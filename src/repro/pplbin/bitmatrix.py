"""Packed-bitset Boolean matrix kernel with adaptive representation selection.

The Theorem 2 evaluator bottoms out in Boolean matrix algebra over node-pair
relations.  The seed represented every relation as a dense ``dtype=bool``
numpy matrix and multiplied through a uint8 cast — O(n^3) byte operations
re-cast on every call.  This module provides three interchangeable
representations behind one :class:`Relation` interface, plus a per-operation
cost model that picks between them:

* :class:`DenseRelation` — the ``(n, n)`` bool matrix.  Composition is a
  float32 BLAS matmul (exact for n < 2**24 and an order of magnitude faster
  than the integer product); element-wise operators are vectorised numpy.
* :class:`BitsetRelation` — rows packed into ``uint64`` words (``W =
  ceil(n/64)`` words per row).  Composition ORs the packed rows of the right
  operand selected by each left row — ``nnz(left) * W`` word operations, the
  n^3/64 bit-parallel product — and union/intersection/difference/complement
  and the ``[M]`` diagonal are word-wise.
* :class:`SparseRelation` — per-row sorted successor arrays (the
  ``bool_matmul_sparse`` idea promoted to a first-class representation).
  Cost proportional to the 1-entries touched; unbeatable while relations
  stay very sparse, hopeless once ``except`` densifies them.

:class:`Kernel` instances build and combine relations in a fixed
representation; :class:`AdaptiveKernel` consults :func:`choose_compose` /
:func:`preferred_representation` (density- and size-driven estimates with
documented machine constants) per sub-expression.  The evaluator, the axis
builders, the HCL oracle and the serving stack all work against
:func:`get_kernel` / :func:`get_default_kernel`, so one ``--kernel`` knob (or
the ``REPRO_KERNEL`` environment variable, which worker processes inherit)
switches the whole stack.

Demand-driven access: :func:`union_rows` computes single-row products without
materialising any full matrix, which is what lets
``PPLbinEvaluator.successors`` answer Proposition 10 row queries on cold
expressions (see :mod:`repro.pplbin.evaluator`).

Module-level counters (:func:`counters` / :func:`reset_counters`) record how
many full products and row unions ran — benches and the no-materialisation
regression tests instrument the kernel through them.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro import faults

__all__ = [
    "Relation",
    "DenseRelation",
    "BitsetRelation",
    "SparseRelation",
    "Kernel",
    "DenseKernel",
    "BitsetKernel",
    "SparseKernel",
    "AdaptiveKernel",
    "KERNELS",
    "KERNEL_NAMES",
    "kernel_descriptions",
    "get_kernel",
    "get_default_kernel",
    "set_default_kernel",
    "relation_from_matrix",
    "relation_from_rows",
    "union_rows",
    "counters",
    "reset_counters",
    "COST_PROFILE_ENV",
    "cost_constants",
    "set_cost_constants",
    "load_cost_profile",
]

#: Environment variable selecting the process-wide default kernel; read once
#: at first use so spawned corpus workers inherit the CLI's ``--kernel``.
KERNEL_ENV = "REPRO_KERNEL"

_UINT64_ONE = np.uint64(1)
_EMPTY_ROW = np.empty(0, dtype=np.int64)

if hasattr(np, "bitwise_count"):
    _popcount = np.bitwise_count
else:  # pragma: no cover - numpy < 2.0 fallback
    _POPCOUNT_TABLE = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _popcount(words: np.ndarray) -> np.ndarray:
        return _POPCOUNT_TABLE[words.view(np.uint8)]


# ------------------------------------------------------------------ counters
_counter_lock = threading.Lock()
_counters = {"full_compose": 0, "row_union": 0, "relations_built": 0}


def _count(name: str, amount: int = 1) -> None:
    with _counter_lock:
        _counters[name] += amount


def counters() -> dict:
    """A snapshot of the kernel instrumentation counters.

    ``full_compose`` counts full matrix products, ``row_union`` counts
    demand-driven single-row products, ``relations_built`` counts relation
    materialisations from axis/row data.  Tests assert on these to prove the
    demand-driven paths never touch a full product.
    """
    with _counter_lock:
        return dict(_counters)


def reset_counters() -> None:
    """Zero the instrumentation counters (tests and benches)."""
    with _counter_lock:
        for key in _counters:
            _counters[key] = 0


# ----------------------------------------------------------- packing helpers
def _word_count(size: int) -> int:
    return (size + 63) // 64


def _tail_mask(size: int) -> np.ndarray:
    """Per-word mask with the bits beyond ``size`` cleared (for complement)."""
    words = _word_count(size)
    mask = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    tail = size & 63
    if words and tail:
        mask[-1] = (_UINT64_ONE << np.uint64(tail)) - _UINT64_ONE
    return mask


def pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, size)`` bool matrix into ``(rows, W)`` uint64 words."""
    rows, size = matrix.shape
    words = _word_count(size)
    packed = np.packbits(matrix, axis=1, bitorder="little")
    padded = np.zeros((rows, words * 8), dtype=np.uint8)
    padded[:, : packed.shape[1]] = packed
    return np.ascontiguousarray(padded).view(np.uint64)


def unpack_rows(words: np.ndarray, size: int) -> np.ndarray:
    """Unpack ``(rows, W)`` uint64 words back into a ``(rows, size)`` bool matrix."""
    rows = words.shape[0]
    if size == 0:
        return np.zeros((rows, 0), dtype=bool)
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(as_bytes, axis=1, bitorder="little", count=size).astype(bool)


def pack_vector(vector: np.ndarray) -> np.ndarray:
    """Pack a bool vector into uint64 words (for column label masks)."""
    return pack_rows(vector.reshape(1, -1))[0]


# ------------------------------------------------------------ representations
class Relation:
    """A Boolean relation on ``size`` nodes, in one of three representations.

    All representations expose the same read interface (conversion, row
    access, cardinality); the algebra lives on :class:`Kernel` so that the
    representation of each *result* is an explicit choice.
    """

    __slots__ = ("size", "_dense", "_nnz")

    representation = "abstract"

    def __init__(self, size: int) -> None:
        self.size = size
        self._dense: Optional[np.ndarray] = None
        self._nnz: Optional[int] = None

    # Conversions ----------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """The dense bool matrix (returned read-only).

        Memoised only when the matrix is the relation's own storage or
        small: relations live in byte-budgeted caches that account ``nbytes``
        at insertion time, so lazily attaching an n^2 memo to a cached packed
        relation would grow untracked memory behind the budget's back.
        Recomputing instead costs one unpack/scatter — microseconds at the
        sizes where it matters.
        """
        if self._dense is not None:
            return self._dense
        dense = self._compute_dense()
        dense.setflags(write=False)
        if self.representation == "dense" or self.size <= SMALL_SIZE:
            self._dense = dense
        return dense

    def _compute_dense(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_bitset(self) -> "BitsetRelation":
        return BitsetRelation(self.size, pack_rows(self.to_dense()))

    def to_sparse(self) -> "SparseRelation":
        # One vectorised nonzero; rows are CSR-delimited, never split.
        sources, targets = np.nonzero(self.to_dense())
        return SparseRelation.from_flat(
            self.size, sources, targets.astype(np.int64)
        )

    # Cardinality ----------------------------------------------------------
    def nnz(self) -> int:
        """Number of 1-entries (memoised; drives the cost model)."""
        if self._nnz is None:
            self._nnz = self._compute_nnz()
        return self._nnz

    def _compute_nnz(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def density(self) -> float:
        cells = self.size * self.size
        return self.nnz() / cells if cells else 0.0

    @property
    def nbytes(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    # Row access -----------------------------------------------------------
    def row_indices(self, node: int) -> np.ndarray:  # pragma: no cover - abstract
        """Sorted successor ids of ``node`` (the ``S_{u,b}`` of Prop. 10)."""
        raise NotImplementedError

    def row_any(self, node: int) -> bool:
        return bool(self.row_indices(node).size)

    def any(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def pairs(self) -> frozenset:
        """The relation as an explicit ``frozenset`` of node pairs."""
        rows, cols = np.nonzero(self.to_dense())
        return frozenset(zip(rows.tolist(), cols.tolist()))

    def equals(self, other: "Relation") -> bool:
        return self.size == other.size and np.array_equal(self.to_dense(), other.to_dense())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(size={self.size}, nnz={self.nnz()}, "
            f"density={self.density():.4f})"
        )


class DenseRelation(Relation):
    """Dense bool-matrix representation (the seed's layout)."""

    __slots__ = ("matrix",)

    representation = "dense"

    def __init__(self, size: int, matrix: np.ndarray) -> None:
        super().__init__(size)
        self.matrix = matrix

    def _compute_dense(self) -> np.ndarray:
        return self.matrix

    def _compute_nnz(self) -> int:
        return int(np.count_nonzero(self.matrix))

    @property
    def nbytes(self) -> int:
        return self.matrix.nbytes

    def row_indices(self, node: int) -> np.ndarray:
        return np.flatnonzero(self.matrix[node]).astype(np.int64)

    def row_any(self, node: int) -> bool:
        return bool(self.matrix[node].any())

    def any(self) -> bool:
        return bool(self.matrix.any())


class BitsetRelation(Relation):
    """Rows packed into uint64 words; 64 matrix cells per word operation."""

    __slots__ = ("words",)

    representation = "bitset"

    def __init__(self, size: int, words: np.ndarray) -> None:
        super().__init__(size)
        self.words = words

    def _compute_dense(self) -> np.ndarray:
        return unpack_rows(self.words, self.size)

    def to_bitset(self) -> "BitsetRelation":
        return self

    def _compute_nnz(self) -> int:
        return int(_popcount(self.words).sum())

    @property
    def nbytes(self) -> int:
        return self.words.nbytes

    def row_indices(self, node: int) -> np.ndarray:
        row = unpack_rows(self.words[node : node + 1], self.size)[0]
        return np.flatnonzero(row).astype(np.int64)

    def row_any(self, node: int) -> bool:
        return bool(self.words[node].any())

    def any(self) -> bool:
        return bool(self.words.any())


class SparseRelation(Relation):
    """Per-row sorted successor arrays in a CSR layout.

    ``indices`` holds every 1-entry's target, row by row; ``indptr`` (length
    ``size + 1``) delimits the rows, so ``row_indices`` is an O(1) slice and
    bulk operations (masking, conversion) run on the flat arrays — no
    per-row numpy call anywhere.  Cost follows the 1-entries touched.
    """

    __slots__ = ("indptr", "indices")

    representation = "sparse"

    def __init__(self, size: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        super().__init__(size)
        self.indptr = indptr
        self.indices = indices

    @classmethod
    def from_row_arrays(cls, size: int, rows: Sequence) -> "SparseRelation":
        """Build from one successor array (or list) per node."""
        lengths = np.fromiter((len(row) for row in rows), dtype=np.int64, count=size)
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        if int(indptr[-1]):
            indices = np.concatenate([np.asarray(row, dtype=np.int64) for row in rows if len(row)])
        else:
            indices = _EMPTY_ROW
        return cls(size, indptr, indices)

    @classmethod
    def from_flat(cls, size: int, sources: np.ndarray, indices: np.ndarray) -> "SparseRelation":
        """Build from parallel (source, target) arrays sorted by source."""
        counts = np.bincount(sources, minlength=size)
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(size, indptr, indices.astype(np.int64, copy=False))

    def _flat(self) -> tuple[np.ndarray, np.ndarray]:
        """All entries as parallel (source, target) arrays."""
        sources = np.repeat(
            np.arange(self.size, dtype=np.int64), np.diff(self.indptr)
        )
        return sources, self.indices

    def _compute_dense(self) -> np.ndarray:
        dense = np.zeros((self.size, self.size), dtype=bool)
        sources, targets = self._flat()
        dense[sources, targets] = True
        return dense

    def to_bitset(self) -> "BitsetRelation":
        width = _word_count(self.size)
        words = np.zeros((self.size, width), dtype=np.uint64)
        sources, targets = self._flat()
        if targets.size:
            flat = words.reshape(-1)
            shifts = (targets & 63).astype(np.uint64)
            np.bitwise_or.at(flat, sources * width + (targets >> 6), _UINT64_ONE << shifts)
        return BitsetRelation(self.size, words)

    def to_sparse(self) -> "SparseRelation":
        return self

    def _compute_nnz(self) -> int:
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes

    def row_indices(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def row_any(self, node: int) -> bool:
        return bool(self.indptr[node + 1] > self.indptr[node])

    def any(self) -> bool:
        return bool(self.indices.size)

    def pairs(self) -> frozenset:
        sources, targets = self._flat()
        return frozenset(zip(sources.tolist(), targets.tolist()))


# ------------------------------------------------------------- constructors
def relation_from_matrix(matrix: np.ndarray) -> DenseRelation:
    """Wrap a dense bool matrix (no copy)."""
    return DenseRelation(matrix.shape[0], matrix)


def relation_from_rows(size: int, rows: Iterable[Iterable[int]]) -> SparseRelation:
    """Build a sparse relation from per-node successor iterables."""
    arrays = [np.asarray(sorted(targets), dtype=np.int64) for targets in rows]
    return SparseRelation.from_row_arrays(size, arrays)


# -------------------------------------------------------------- cost model
#: Built-in machine constants behind the representation choice, in
#: nanoseconds.  They were calibrated against the E9 grid on commodity x86
#: with numpy 2.x and only need to be right within a factor of ~2 — the
#: regimes they separate differ by orders of magnitude.  A fitted profile
#: (``REPRO_COST_PROFILE`` / :func:`load_cost_profile`, produced by
#: :mod:`repro.obs.calibrate` from observed ``kernel.compose`` spans)
#: overrides them per machine.
BLAS_NS_PER_CELL = 0.02  # float32 matmul, per n^3 cell
WORD_NS = 4.0  # per uint64 word in the packed row reduce
ROW_OVERHEAD_NS = 2000.0  # per-row numpy call overhead of the packed product
SPARSE_ELEMENT_NS = 500.0  # per 1-entry touched by the successor-set product
CELL_NS = 0.5  # per matrix cell of a pack/unpack/scan conversion
CONVERT_ELEMENT_NS = 30.0  # per 1-entry of a vectorised sparse conversion
CONVERT_ROW_NS = 300.0  # per row of a split-into-rows conversion

#: At and below this size a dense matrix fits in cache and neither word
#: packing nor successor sets can pay for their own call overhead.
SMALL_SIZE = 128

#: Environment variable naming a calibration-profile JSON to load at import.
COST_PROFILE_ENV = "REPRO_COST_PROFILE"

_DEFAULT_COST = {
    "BLAS_NS_PER_CELL": BLAS_NS_PER_CELL,
    "WORD_NS": WORD_NS,
    "ROW_OVERHEAD_NS": ROW_OVERHEAD_NS,
    "SPARSE_ELEMENT_NS": SPARSE_ELEMENT_NS,
    "CELL_NS": CELL_NS,
    "CONVERT_ELEMENT_NS": CONVERT_ELEMENT_NS,
    "CONVERT_ROW_NS": CONVERT_ROW_NS,
}

#: The active constants the estimators read — defaults unless a profile
#: overrode them.
_COST = dict(_DEFAULT_COST)


def cost_constants() -> dict:
    """The cost-model constants currently in effect (a copy)."""
    return dict(_COST)


def set_cost_constants(overrides: Optional[dict] = None) -> None:
    """Override cost-model constants process-wide; ``None`` restores defaults.

    Unknown keys and non-positive values are ignored — a partial or
    damaged profile can only ever move known constants, never corrupt the
    model's shape.
    """
    global _COST
    merged = dict(_DEFAULT_COST)
    if overrides:
        for key, value in overrides.items():
            if key in _DEFAULT_COST:
                try:
                    value = float(value)
                except (TypeError, ValueError):
                    continue
                if value > 0.0:
                    merged[key] = value
    _COST = merged


def load_cost_profile(path: str) -> dict:
    """Load a :mod:`repro.obs.calibrate` profile JSON and apply its constants.

    Returns the constants now in effect.  Raises ``OSError``/``ValueError``
    on unreadable or malformed files (the import-time environment hook
    swallows those; explicit calls see them).
    """
    import json

    with open(path, "r", encoding="utf-8") as handle:
        profile = json.load(handle)
    if not isinstance(profile, dict):
        raise ValueError(f"not a calibration profile: {path!r}")
    constants = profile.get("constants", profile)
    if not isinstance(constants, dict):
        raise ValueError(f"not a calibration profile: {path!r}")
    set_cost_constants(constants)
    return cost_constants()


def estimate_conversion_ns(rep_from: str, rep_to: str, size: int, nnz: int) -> float:
    """Predicted cost of converting one operand between representations."""
    if rep_from == rep_to:
        return 0.0
    cost = _COST
    cells = float(size) * size
    if {rep_from, rep_to} == {"dense", "bitset"}:
        return cost["CELL_NS"] * cells  # packbits / unpackbits
    if rep_from == "sparse":
        # One concatenate + scatter.
        return cost["CONVERT_ELEMENT_NS"] * nnz + cost["CONVERT_ROW_NS"]
    # Nonzero scan + per-row split.
    return cost["CELL_NS"] * cells + cost["CONVERT_ROW_NS"] * size


def estimate_compose_ns(
    representation: str,
    size: int,
    left_nnz: int,
    right_nnz: int,
    left_rep: Optional[str] = None,
    right_rep: Optional[str] = None,
) -> float:
    """Predicted cost of one composition in ``representation``, in ns.

    When the operand representations are known, the estimate includes what
    it costs to convert them into what the algorithm consumes — at a few
    hundred nodes a per-row conversion rivals the product itself, so a
    representation-blind choice picks wrong.
    """
    cost = _COST
    if representation == "dense":
        base = cost["BLAS_NS_PER_CELL"] * float(size) ** 3
        needs = ("dense", "dense")
    elif representation == "bitset":
        base = (
            cost["ROW_OVERHEAD_NS"] * size
            + cost["WORD_NS"] * left_nnz * _word_count(size)
        )
        # The packed product walks left rows as indices (dense or sparse both
        # work directly) and reduces packed right rows.
        needs = ("dense" if left_rep == "bitset" else (left_rep or "dense"), "bitset")
    elif representation == "sparse":
        touched = left_nnz + (left_nnz * right_nnz / size if size else 0.0)
        base = cost["SPARSE_ELEMENT_NS"] * touched
        needs = ("sparse", "sparse")
    else:
        raise ValueError(f"unknown representation {representation!r}")
    if left_rep is not None:
        base += estimate_conversion_ns(left_rep, needs[0], size, left_nnz)
    if right_rep is not None:
        base += estimate_conversion_ns(right_rep, needs[1], size, right_nnz)
    return base


# Apply a profile named in the environment once at import; a missing or
# corrupt file must never break import (the baked-in defaults still work).
_profile_path = os.environ.get(COST_PROFILE_ENV, "").strip()
if _profile_path:
    try:
        load_cost_profile(_profile_path)
    except (OSError, ValueError):
        pass
del _profile_path


def choose_compose(
    size: int,
    left_nnz: int,
    right_nnz: int,
    left_rep: Optional[str] = None,
    right_rep: Optional[str] = None,
) -> str:
    """Pick the composition algorithm for the observed operand densities."""
    if size <= SMALL_SIZE:
        return "dense"
    candidates = ("dense", "bitset", "sparse")
    return min(
        candidates,
        key=lambda rep: estimate_compose_ns(
            rep, size, left_nnz, right_nnz, left_rep, right_rep
        ),
    )


def preferred_representation(size: int, nnz: int) -> str:
    """Storage representation for a relation of the observed density.

    Successor arrays stay worthwhile well past "a few entries per row" —
    the break-even against packed words is around 16 successors per node
    both operationally (row unions touch only real entries) and in memory
    (16n * 8 bytes ≈ 2x the n^2/8 packed footprint at n = 1024).
    """
    if size <= SMALL_SIZE:
        return "dense"
    if size and nnz <= 16 * size:
        return "sparse"
    return "bitset"


# ------------------------------------------------------------------ kernels
class Kernel:
    """Boolean relation algebra in one (or an adaptively chosen) representation.

    ``cache_token`` namespaces the per-tree matrix cache: two kernels with
    the same token may share cached relations, so it must be unique per
    observable behaviour (fixing the seed's collision of every non-default
    matmul onto one cache key).
    """

    name = "abstract"
    #: Human-readable capability/cost-model summary, surfaced by
    #: ``repro-xpath engines`` next to the engine table (the CLI reads it
    #: from this registry — the same one the Session resolves kernels from).
    storage_summary = ""
    compose_summary = ""
    best_for = ""

    def describe(self) -> dict:
        """The kernel's capability/cost summary as a plain dict."""
        return {
            "name": self.name,
            "storage": self.storage_summary,
            "compose": self.compose_summary,
            "best_for": self.best_for,
        }

    @property
    def cache_token(self):
        return self.name

    # Representation choices (overridden by the fixed kernels) -------------
    def _storage(self, size: int, nnz: int) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def _compose_algorithm(self, left: "Relation", right: "Relation") -> str:
        return self._storage(left.size, left.nnz())

    def coerce(self, relation: Relation) -> Relation:
        """Convert ``relation`` into this kernel's storage representation."""
        target = self._storage(relation.size, relation.nnz())
        return _convert(relation, target)

    # Constructors ---------------------------------------------------------
    def from_rows(self, size: int, rows: Iterable[Iterable[int]]) -> Relation:
        """Build a relation directly from successor lists (packed/sparse/dense
        without a dense intermediate for the non-dense representations)."""
        _count("relations_built")
        sparse = relation_from_rows(size, rows)
        return _convert(sparse, self._storage(size, sparse.nnz()))

    def from_matrix(self, matrix: np.ndarray) -> Relation:
        _count("relations_built")
        dense = relation_from_matrix(matrix)
        return _convert(dense, self._storage(dense.size, dense.nnz()))

    def identity(self, size: int) -> Relation:
        sparse = SparseRelation(
            size, np.arange(size + 1, dtype=np.int64), np.arange(size, dtype=np.int64)
        )
        return _convert(sparse, self._storage(size, size))

    # Algebra --------------------------------------------------------------
    def compose(self, left: Relation, right: Relation) -> Relation:
        """Boolean matrix product ``left . right``."""
        _count("full_compose")
        faults.trip("slow_query", site="compose")
        algorithm = self._compose_algorithm(left, right)
        if algorithm == "dense":
            return _compose_dense(left, right)
        if algorithm == "bitset":
            return _compose_bitset(left, right)
        return _compose_sparse(left, right)

    def union(self, left: Relation, right: Relation) -> Relation:
        return self._elementwise(left, right, np.bitwise_or)

    def intersection(self, left: Relation, right: Relation) -> Relation:
        return self._elementwise(left, right, np.bitwise_and)

    def difference(self, left: Relation, right: Relation) -> Relation:
        if isinstance(left, BitsetRelation) or isinstance(right, BitsetRelation):
            lw, rw = left.to_bitset().words, right.to_bitset().words
            return self.coerce(BitsetRelation(left.size, lw & ~rw))
        return self.coerce(
            DenseRelation(left.size, left.to_dense() & ~right.to_dense())
        )

    def complement(self, relation: Relation) -> Relation:
        size = relation.size
        if isinstance(relation, SparseRelation):
            # Scatter the (few) 1-entries out of an all-ones matrix: the
            # near-full result lands dense, which is what its consumer (a
            # composition, almost always) wants to read anyway.
            sources, targets = relation._flat()
            dense = np.ones((size, size), dtype=bool)
            dense[sources, targets] = False
            result: Relation = DenseRelation(size, dense)
        elif isinstance(relation, DenseRelation):
            result = DenseRelation(size, ~relation.to_dense())
        else:
            words = relation.to_bitset().words
            result = BitsetRelation(size, ~words & _tail_mask(size)[np.newaxis, :])
        return self.coerce(result)

    def filter_diagonal(self, relation: Relation) -> Relation:
        """The paper's ``[M]``: keep ``(u, u)`` for rows with a successor."""
        if isinstance(relation, SparseRelation):
            satisfied = np.flatnonzero(np.diff(relation.indptr) > 0)
        elif isinstance(relation, BitsetRelation):
            satisfied = np.flatnonzero(relation.words.any(axis=1))
        else:
            satisfied = np.flatnonzero(relation.to_dense().any(axis=1))
        satisfied = satisfied.astype(np.int64)
        sparse = SparseRelation.from_flat(relation.size, satisfied, satisfied)
        return _convert(sparse, self._storage(relation.size, sparse.nnz()))

    def mask_columns(self, relation: Relation, labels: np.ndarray) -> Relation:
        """Restrict targets to the nodes selected by the bool vector ``labels``."""
        if isinstance(relation, SparseRelation):
            # One vectorised filter over the flattened CSR entries.
            sources, targets = relation._flat()
            keep = labels[targets]
            return SparseRelation.from_flat(
                relation.size, sources[keep], targets[keep]
            )
        if isinstance(relation, BitsetRelation):
            packed = pack_vector(labels)
            return BitsetRelation(relation.size, relation.words & packed[np.newaxis, :])
        return DenseRelation(relation.size, relation.to_dense() & labels[np.newaxis, :])

    # Internals ------------------------------------------------------------
    def _elementwise(self, left: Relation, right: Relation, op) -> Relation:
        size = left.size
        if isinstance(left, SparseRelation) and isinstance(right, SparseRelation) and size:
            # One vectorised merge over flattened (source, target) keys.
            ls, lt = left._flat()
            rs, rt = right._flat()
            left_keys = ls * size + lt
            right_keys = rs * size + rt
            if op is np.bitwise_or:
                keys = np.unique(np.concatenate([left_keys, right_keys]))
            else:
                keys = np.intersect1d(left_keys, right_keys, assume_unique=True)
            return self.coerce(
                SparseRelation.from_flat(size, keys // size, keys % size)
            )
        if isinstance(left, BitsetRelation) or isinstance(right, BitsetRelation):
            result: Relation = BitsetRelation(
                size, op(left.to_bitset().words, right.to_bitset().words)
            )
        else:
            result = DenseRelation(size, op(left.to_dense(), right.to_dense()))
        return self.coerce(result)


class DenseKernel(Kernel):
    """Everything dense; composition through the exact float32 BLAS product."""

    name = "dense"
    storage_summary = "n x n bool matrix (n^2 bytes)"
    compose_summary = "float32 BLAS matmul, O(n^3) flops (exact for n < 2^24)"
    best_for = "dense relations and small trees; except-heavy expressions"

    def _storage(self, size: int, nnz: int) -> str:
        return "dense"


class BitsetKernel(Kernel):
    """Everything packed into uint64 words."""

    name = "bitset"
    storage_summary = "rows packed into uint64 words (n^2/8 bytes)"
    compose_summary = "word-wise OR of selected rows: nnz(left) * n/64 word ops"
    best_for = "large trees at moderate density (the n^3/64 product)"

    def _storage(self, size: int, nnz: int) -> str:
        return "bitset"


class SparseKernel(Kernel):
    """Everything as successor-set arrays (degrades on dense relations)."""

    name = "sparse"
    storage_summary = "per-row sorted successor arrays (O(nnz))"
    compose_summary = "gathers proportional to the 1-entries touched"
    best_for = "very sparse relations; hopeless once except densifies them"

    def _storage(self, size: int, nnz: int) -> str:
        return "sparse"


class AdaptiveKernel(Kernel):
    """Representation per sub-expression, selected by the cost model."""

    name = "adaptive"
    storage_summary = "chosen per relation by density/size estimates"
    compose_summary = "conversion-aware cost model picks the cheapest algorithm"
    best_for = "default: within ~15% of the best fixed kernel on the E9 grid"

    def _storage(self, size: int, nnz: int) -> str:
        return preferred_representation(size, nnz)

    def _compose_algorithm(self, left: "Relation", right: "Relation") -> str:
        return choose_compose(
            left.size,
            left.nnz(),
            right.nnz(),
            left.representation,
            right.representation,
        )

    def coerce(self, relation: Relation) -> Relation:
        # Keep whatever representation an operation produced unless it is
        # clearly wrong for the observed density — conversions are not free,
        # and dense/bitset are interchangeable operands for every consumer
        # (repacking a dense result into words costs more compute than the
        # byte-budgeted cache saves at these sizes).
        target = preferred_representation(relation.size, relation.nnz())
        if relation.representation == target:
            return relation
        if target == "sparse":
            if relation.representation == "bitset" and relation.nnz() > relation.size:
                # Packed rows already answer row queries well; converting
                # buys little for a mid-density relation.
                return relation
            return _convert(relation, "sparse")
        if target == "dense" and relation.size <= SMALL_SIZE:
            return _convert(relation, "dense")
        return relation


# ------------------------------------------------------ composition routines
def _compose_dense(left: Relation, right: Relation) -> DenseRelation:
    a = left.to_dense().astype(np.float32)
    b = right.to_dense().astype(np.float32)
    return DenseRelation(left.size, (a @ b) != 0)


def _compose_bitset(left: Relation, right: Relation) -> BitsetRelation:
    size = left.size
    right_words = right.to_bitset().words
    out = np.zeros_like(right_words)
    if isinstance(left, SparseRelation):
        indptr, indices = left.indptr, left.indices
        for node in range(size):
            sources = indices[indptr[node] : indptr[node + 1]]
            if sources.size:
                np.bitwise_or.reduce(right_words[sources], axis=0, out=out[node])
    else:
        left_bool = left.to_dense()
        for node in range(size):
            sources = np.flatnonzero(left_bool[node])
            if sources.size:
                np.bitwise_or.reduce(right_words[sources], axis=0, out=out[node])
    return BitsetRelation(size, out)


def _compose_sparse(left: Relation, right: Relation) -> SparseRelation:
    size = left.size
    left_sparse = left.to_sparse()
    right_sparse = right.to_sparse()
    rows = []
    for node in range(size):
        sources = left_sparse.row_indices(node)
        if not sources.size:
            rows.append(_EMPTY_ROW)
            continue
        parts = [right_sparse.row_indices(k) for k in sources.tolist()]
        parts = [part for part in parts if part.size]
        if not parts:
            rows.append(_EMPTY_ROW)
        elif len(parts) == 1:
            rows.append(parts[0])
        else:
            rows.append(np.unique(np.concatenate(parts)))
    return SparseRelation.from_row_arrays(size, rows)


def union_rows(relation: Relation, sources: np.ndarray) -> np.ndarray:
    """The demand-driven single-row product: ``OR`` of the rows in ``sources``.

    Returns the sorted successor ids reachable from any node in ``sources``
    without materialising anything of size n^2.
    """
    _count("row_union")
    if sources.size == 0:
        return _EMPTY_ROW
    if isinstance(relation, SparseRelation):
        parts = [relation.row_indices(k) for k in sources.tolist()]
        parts = [part for part in parts if part.size]
        if not parts:
            return _EMPTY_ROW
        if len(parts) == 1:
            return parts[0]
        return np.unique(np.concatenate(parts))
    if isinstance(relation, BitsetRelation):
        combined = np.bitwise_or.reduce(relation.words[sources], axis=0)
        row = unpack_rows(combined.reshape(1, -1), relation.size)[0]
        return np.flatnonzero(row).astype(np.int64)
    dense = relation.to_dense()
    return np.flatnonzero(dense[sources].any(axis=0)).astype(np.int64)


def _convert(relation: Relation, target: str) -> Relation:
    if relation.representation == target:
        return relation
    if target == "dense":
        return DenseRelation(relation.size, np.array(relation.to_dense()))
    if target == "bitset":
        return relation.to_bitset()
    return relation.to_sparse()


# ----------------------------------------------------------------- registry
KERNELS: dict[str, Kernel] = {
    kernel.name: kernel
    for kernel in (DenseKernel(), BitsetKernel(), SparseKernel(), AdaptiveKernel())
}

#: Stable tuple of the registered kernel names (CLI choices, bench grids).
KERNEL_NAMES: tuple[str, ...] = tuple(KERNELS)


def kernel_descriptions() -> dict[str, dict]:
    """Capability/cost summaries of every registered kernel, by name."""
    return {name: kernel.describe() for name, kernel in KERNELS.items()}

_default_kernel: Optional[Kernel] = None
_default_lock = threading.Lock()


def get_kernel(kernel: Union[str, Kernel, None]) -> Kernel:
    """Resolve a kernel name (or pass an instance through; None = default)."""
    if kernel is None:
        return get_default_kernel()
    if isinstance(kernel, Kernel):
        return kernel
    try:
        return KERNELS[kernel]
    except KeyError:
        known = ", ".join(sorted(KERNELS))
        raise ValueError(f"unknown kernel {kernel!r} (known: {known})") from None


def get_default_kernel() -> Kernel:
    """The process-wide default kernel (``REPRO_KERNEL`` env or adaptive)."""
    global _default_kernel
    with _default_lock:
        if _default_kernel is None:
            name = os.environ.get(KERNEL_ENV, "adaptive")
            try:
                _default_kernel = KERNELS[name]
            except KeyError:
                known = ", ".join(sorted(KERNELS))
                raise ValueError(
                    f"unknown kernel {name!r} in ${KERNEL_ENV} (known: {known})"
                ) from None
        return _default_kernel


def set_default_kernel(kernel: Union[str, Kernel, None]) -> Kernel:
    """Set (and return) the process-wide default kernel.

    Passing ``None`` resets to the environment/adaptive default.  Callers
    that fan out to worker processes should also export ``REPRO_KERNEL`` so
    the workers agree (the CLI's ``--kernel`` does both).
    """
    global _default_kernel
    resolved = None if kernel is None else get_kernel(kernel)
    with _default_lock:
        _default_kernel = resolved
    return get_default_kernel()
