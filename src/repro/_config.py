"""The shared "not specified" sentinel for configuration plumbing.

Several layers need to distinguish "this knob was not given" from an
explicit ``None`` (which commonly means *unbounded* for byte budgets, or
*process default* for the kernel).  They must all share **one** sentinel
object: a value created in one module and compared against a lookalike in
another would silently take the wrong branch.  :data:`UNSET` is that single
object — :mod:`repro.session.policy` re-exports it as the public policy
sentinel, and the Document/store/executor keyword plumbing compares against
the same instance.

(:class:`repro.trees.tree.Tree` aliases this sentinel as its private
``_UNSET`` — the snapshot loader forwards matrix budgets across that module
boundary, so the instances must be one and the same.)
"""

from __future__ import annotations

from typing import Optional


class _Unset:
    """Singleton sentinel for "this field was not specified"."""

    _instance: Optional["_Unset"] = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNSET"

    def __bool__(self) -> bool:
        return False


#: The shared "not specified" sentinel.
UNSET = _Unset()
