"""Corpus generation: many documents with controllable size skew (S9, E10).

Real corpora are not uniform — a few large documents dominate while most are
small.  :func:`generate_corpus` produces ``N`` bibliography or restaurant
documents whose sizes follow a Zipf-like power law controlled by ``skew``
(``0.0`` = uniform, larger = heavier head), which is what makes shard-balance
and eviction behaviour observable in the corpus benchmarks.

:func:`write_corpus` materialises a generated corpus as one XML file per
document, ready for ``DocumentStore.from_directory`` and the
``repro-xpath corpus`` CLI.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.trees.tree import Tree
from repro.trees.xml_io import tree_to_xml
from repro.workloads.bibliography import generate_bibliography
from repro.workloads.restaurants import generate_restaurants

CORPUS_KINDS = ("bibliography", "restaurants")


def corpus_scales(num_documents: int, base: int, skew: float) -> list[int]:
    """Per-document scale factors following a truncated power law.

    Document ``i`` (0-based) gets ``max(1, round(base / (i + 1) ** skew))``
    elements: with ``skew=0`` every document has ``base`` elements, with
    ``skew=1`` the classic Zipf head/tail shape.  Deterministic by
    construction.
    """
    if num_documents < 1:
        raise ValueError("num_documents must be at least 1")
    if base < 1:
        raise ValueError("base must be at least 1")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    return [max(1, round(base / (i + 1) ** skew)) for i in range(num_documents)]


def generate_corpus(
    num_documents: int,
    kind: str = "bibliography",
    *,
    base: int = 16,
    skew: float = 0.0,
    seed: int = 0,
    **kwargs,
) -> dict[str, Tree]:
    """Return ``{name: tree}`` for ``num_documents`` synthetic documents.

    Parameters
    ----------
    kind:
        ``"bibliography"`` (books with author/title/decoy children) or
        ``"restaurants"`` (the wide-tuple scenario).
    base:
        Element count (books or restaurants) of the *largest* document.
    skew:
        Power-law exponent for the size distribution; ``0.0`` keeps every
        document at ``base`` elements.
    seed:
        Base seed; document ``i`` uses ``seed + i`` so contents differ while
        the corpus stays reproducible.
    kwargs:
        Forwarded to the per-document generator
        (:func:`~repro.workloads.bibliography.generate_bibliography` or
        :func:`~repro.workloads.restaurants.generate_restaurants`).

    Names are zero-padded (``doc000``, ``doc001``, ...) so lexicographic
    order equals generation order — directory loading round-trips the store
    order.
    """
    if kind not in CORPUS_KINDS:
        raise ValueError(f"unknown corpus kind {kind!r}; expected one of {CORPUS_KINDS}")
    scales = corpus_scales(num_documents, base, skew)
    width = max(3, len(str(num_documents - 1)))
    corpus: dict[str, Tree] = {}
    for index, scale in enumerate(scales):
        name = f"doc{index:0{width}d}"
        if kind == "bibliography":
            corpus[name] = generate_bibliography(scale, seed=seed + index, **kwargs)
        else:
            corpus[name] = generate_restaurants(scale, seed=seed + index, **kwargs)
    return corpus


def write_corpus(
    directory: Union[str, Path], corpus: dict[str, Tree], *, indent: bool = False
) -> list[Path]:
    """Write each document of ``corpus`` as ``<name>.xml`` under ``directory``.

    The directory is created if needed; returns the written paths in name
    order.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    paths = []
    for name in sorted(corpus):
        path = root / f"{name}.xml"
        path.write_text(tree_to_xml(corpus[name], indent=indent), encoding="utf-8")
        paths.append(path)
    return paths
