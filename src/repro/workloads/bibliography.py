"""Bibliography documents — the paper's introductory example workload.

The paper's motivating XQuery/XPath 2.0 example extracts author/title pairs
from the books of a bibliography::

    doc("bib.xml")/descendant::book[ child::author[. is $y]
                                 and child::title[. is $z] ]

:func:`generate_bibliography` produces documents of that shape with a
controllable number of books, authors per book and decoy elements, so the
answer-set size ``|A|`` can be dialled independently of the tree size — which
is exactly what the output-sensitivity experiment E4 needs.
"""

from __future__ import annotations

import random

from repro.trees.tree import Node, Tree


def generate_bibliography(
    num_books: int,
    authors_per_book: int = 1,
    titles_per_book: int = 1,
    decoys_per_book: int = 2,
    seed: int = 0,
) -> Tree:
    """Return a bibliography document.

    The root ``bib`` has ``num_books`` children labeled ``book``; each book
    carries ``authors_per_book`` ``author`` children, ``titles_per_book``
    ``title`` children and ``decoys_per_book`` filler children (``year``,
    ``publisher`` or ``price``), shuffled deterministically by ``seed``.
    Answer size of the author/title pair query is
    ``num_books * authors_per_book * titles_per_book``.
    """
    rng = random.Random(seed)
    decoy_labels = ("year", "publisher", "price")
    bib = Node("bib")
    for _ in range(num_books):
        children = (
            [Node("author") for _ in range(authors_per_book)]
            + [Node("title") for _ in range(titles_per_book)]
            + [Node(rng.choice(decoy_labels)) for _ in range(decoys_per_book)]
        )
        rng.shuffle(children)
        bib.children.append(Node("book", children))
    return Tree(bib)


def bibliography_pair_query() -> tuple[str, list[str]]:
    """Return the paper's author/title pair query and its output variables.

    The expression is the XPath 2.0 style query from the introduction
    (anchored at the document root implicitly, since the answer only depends
    on the variable bindings).
    """
    query = (
        "descendant::book[ child::author[. is $y] and child::title[. is $z] ]"
    )
    return query, ["y", "z"]


def bibliography_query_xquery_style() -> str:
    """Return an equivalent for-loop formulation, mirroring the XQuery program.

    The paper's introduction first shows the XQuery program iterating over
    books with ``for``; the expression returned here selects the same
    ``(y, z)`` pairs but does so with an explicit for-loop over the book
    element.  It is therefore *not* a PPL expression (it violates N(for));
    examples and tests use it to demonstrate the restriction and to compare
    against the naive engine, which can still answer it.
    """
    return (
        "for $b in descendant::book return "
        ".[ $b/child::author[. is $y] and $b/child::title[. is $z] ]"
    )


def book_author_title_triples_query() -> tuple[str, list[str]]:
    """A ternary variant also binding the book element itself."""
    query = (
        "descendant::book[. is $b]"
        "[ child::author[. is $y] and child::title[. is $z] ]"
    )
    return query, ["b", "y", "z"]
