"""Random query generators for PPLbin, PPL and HCL⁻.

Property-based tests and the scaling benchmarks need streams of syntactically
valid expressions with controllable size and variable count.  The generators
here are deterministic given a seed and guarantee by construction that:

* :func:`random_pplbin_expression` produces Fig. 3 expressions,
* :func:`random_ppl_expression` produces expressions satisfying Definition 1
  (verified in tests against :func:`repro.core.ppl.is_ppl`),
* :func:`random_hcl_formula` produces HCL⁻ formulas over PPLbin leaves with
  no variable sharing across compositions.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.trees.axes import Axis
from repro.pplbin.ast import BCompose, BExcept, BFilter, BinExpr, BStep, BUnion, SelfStep
from repro.xpath import ast as x
from repro.hcl.ast import HclExpr, HCompose, HFilter, HUnion, HVar, Leaf

#: Axes used by the generators (the paper's Fig. 1 axes).
_GEN_AXES: tuple[Axis, ...] = (
    Axis.SELF,
    Axis.CHILD,
    Axis.PARENT,
    Axis.DESCENDANT,
    Axis.ANCESTOR,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
)


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def _random_step(rng: random.Random, alphabet: Sequence[str]) -> BStep:
    axis = rng.choice(_GEN_AXES)
    nametest = rng.choice(list(alphabet) + [None])
    return BStep(axis, nametest)


def random_pplbin_expression(
    size: int, alphabet: Sequence[str] = ("a", "b", "c"), seed: int | random.Random = 0,
    allow_except: bool = True,
) -> BinExpr:
    """Return a random PPLbin expression with roughly ``size`` operators."""
    rng = _rng(seed)

    def build(budget: int) -> BinExpr:
        if budget <= 1:
            return _random_step(rng, alphabet) if rng.random() < 0.85 else SelfStep()
        choices = ["compose", "union", "filter"]
        if allow_except:
            choices.append("except")
        operator = rng.choice(choices)
        if operator == "compose":
            split = rng.randint(1, budget - 1)
            return BCompose(build(split), build(budget - split))
        if operator == "union":
            split = rng.randint(1, budget - 1)
            return BUnion(build(split), build(budget - split))
        if operator == "filter":
            return BFilter(build(budget - 1))
        return BExcept(build(budget - 1))

    return build(max(size, 1))


def random_ppl_expression(
    size: int,
    num_variables: int,
    alphabet: Sequence[str] = ("a", "b", "c"),
    seed: int | random.Random = 0,
) -> tuple[x.PathExpr, list[str]]:
    """Return a random PPL expression together with its variable list.

    The expression satisfies Definition 1 by construction: each variable is
    attached exactly once, as an ``[. is $xi]`` comparison on a fresh branch,
    so no operator ever shares variables, and negations / intersections /
    exceptions are only generated over variable-free sub-expressions.
    """
    rng = _rng(seed)
    variables = [f"x{i}" for i in range(1, num_variables + 1)]

    def variable_free(budget: int) -> x.PathExpr:
        if budget <= 1:
            step = _random_step(rng, alphabet)
            return x.Step(step.axis, step.nametest)
        operator = rng.choice(["compose", "union", "filter", "except"])
        if operator == "compose":
            split = rng.randint(1, budget - 1)
            return x.PathCompose(variable_free(split), variable_free(budget - split))
        if operator == "union":
            split = rng.randint(1, budget - 1)
            return x.PathUnion(variable_free(split), variable_free(budget - split))
        if operator == "filter":
            return x.Filter(variable_free(budget - 1), x.PathTest(variable_free(1)))
        return x.PathExcept(variable_free(budget - 1), variable_free(1))

    def with_variables(budget: int, names: list[str]) -> x.PathExpr:
        if not names:
            return variable_free(max(budget, 1))
        if len(names) == 1 and budget <= 2:
            # Anchor the single variable on a filtered step.
            return x.Filter(
                variable_free(1), x.CompTest(x.CONTEXT, names[0])
            )
        operator = rng.choice(["compose", "union", "filter"])
        if operator == "compose":
            split_names = rng.randint(0, len(names))
            left_names, right_names = names[:split_names], names[split_names:]
            split = max(budget // 2, 1)
            return x.PathCompose(
                with_variables(split, left_names),
                with_variables(budget - split, right_names),
            )
        if operator == "union":
            # Unions may share variables freely; give both sides every name.
            split = max(budget // 2, 1)
            return x.PathUnion(
                with_variables(split, names), with_variables(budget - split, names)
            )
        # Filter: variables go into the test, the path stays variable free.
        test = _variable_test(names)
        return x.Filter(variable_free(max(budget - len(names), 1)), test)

    def _variable_test(names: list[str]) -> x.TestExpr:
        tests: list[x.TestExpr] = [x.CompTest(x.CONTEXT, name) for name in names[:1]]
        for name in names[1:]:
            tests.append(
                x.PathTest(
                    x.PathCompose(
                        x.Step(rng.choice(_GEN_AXES), None),
                        x.Filter(x.ContextItem(), x.CompTest(x.CONTEXT, name)),
                    )
                )
            )
        result = tests[0]
        for test in tests[1:]:
            result = x.AndTest(result, test)
        return result

    return with_variables(max(size, 1), variables), variables


def random_hcl_formula(
    size: int,
    num_variables: int,
    alphabet: Sequence[str] = ("a", "b", "c"),
    seed: int | random.Random = 0,
) -> tuple[HclExpr, list[str]]:
    """Return a random HCL⁻(PPLbin) formula and its variable list.

    Variables are distributed over disjoint composition branches so NVS(/)
    holds by construction; unions may duplicate variables on both sides.
    """
    rng = _rng(seed)
    variables = [f"x{i}" for i in range(1, num_variables + 1)]

    def leaf() -> HclExpr:
        return Leaf(random_pplbin_expression(rng.randint(1, 3), alphabet, rng))

    def build(budget: int, names: list[str]) -> HclExpr:
        if not names and budget <= 1:
            return leaf()
        if names and budget <= 1:
            formula: HclExpr = HVar(names[0])
            for name in names[1:]:
                formula = HCompose(formula, HCompose(leaf(), HVar(name)))
            return formula
        operator = rng.choice(["compose", "union", "filter"])
        if operator == "compose":
            split_names = rng.randint(0, len(names))
            split = max(budget // 2, 1)
            return HCompose(
                build(split, names[:split_names]),
                build(budget - split, names[split_names:]),
            )
        if operator == "union":
            split = max(budget // 2, 1)
            return HUnion(build(split, names), build(budget - split, names))
        return HCompose(HFilter(build(max(budget - 1, 1), names)), leaf())

    return build(max(size, 1), variables), variables
