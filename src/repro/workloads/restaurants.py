"""Restaurant listings — the paper's wide-tuple motivating scenario.

The introduction argues that in practice the tuple width ``n`` easily reaches
10 or more, "for instance, when querying for attributes of restaurants such
as name, address, phone number, fax number, street, ... food style".  This
module generates such documents and the corresponding n-ary PPL query, used
by the tuple-width scaling experiment E5 and by the engine-comparison
experiment E3.
"""

from __future__ import annotations

import random

from repro.trees.tree import Node, Tree

#: The attribute names quoted in the paper's introduction, in order.
ATTRIBUTE_LABELS: tuple[str, ...] = (
    "name",
    "address",
    "phone",
    "fax",
    "street",
    "streetnumber",
    "district",
    "city",
    "country",
    "avgprice",
    "foodstyle",
    "rating",
)


def generate_restaurants(
    num_restaurants: int,
    num_attributes: int = 10,
    missing_probability: float = 0.0,
    decoys_per_restaurant: int = 0,
    seed: int = 0,
) -> Tree:
    """Return a ``guide`` document with ``num_restaurants`` restaurant elements.

    Each restaurant has one child per attribute (the first
    ``num_attributes`` entries of :data:`ATTRIBUTE_LABELS`); with probability
    ``missing_probability`` an attribute is dropped, which makes the
    restaurant not contribute to the n-ary answer — this is how experiment E4
    controls selectivity.  ``decoys_per_restaurant`` extra ``review`` children
    pad the tree without affecting answers.
    """
    if not 1 <= num_attributes <= len(ATTRIBUTE_LABELS):
        raise ValueError(
            f"num_attributes must be between 1 and {len(ATTRIBUTE_LABELS)}"
        )
    rng = random.Random(seed)
    guide = Node("guide")
    for _ in range(num_restaurants):
        restaurant = Node("restaurant")
        for label in ATTRIBUTE_LABELS[:num_attributes]:
            if rng.random() >= missing_probability:
                restaurant.children.append(Node(label))
        for _ in range(decoys_per_restaurant):
            restaurant.children.append(Node("review"))
        guide.children.append(restaurant)
    return Tree(guide)


def restaurant_query(num_attributes: int = 10) -> tuple[str, list[str]]:
    """Return the n-ary PPL query selecting one tuple per fully-described restaurant.

    The query binds one variable per attribute — tuple width ``n`` equals
    ``num_attributes`` — and mirrors the author/title pattern of the paper's
    introduction, scaled up::

        descendant::restaurant[ child::name[. is $x1] and ... ]
    """
    if not 1 <= num_attributes <= len(ATTRIBUTE_LABELS):
        raise ValueError(
            f"num_attributes must be between 1 and {len(ATTRIBUTE_LABELS)}"
        )
    variables = [f"x{i}" for i in range(1, num_attributes + 1)]
    tests = [
        f"child::{label}[. is ${variable}]"
        for label, variable in zip(ATTRIBUTE_LABELS, variables)
    ]
    query = "descendant::restaurant[ " + " and ".join(tests) + " ]"
    return query, variables


def restaurant_query_with_restaurant(num_attributes: int = 10) -> tuple[str, list[str]]:
    """Variant that also returns the restaurant element itself (arity n+1)."""
    query, variables = restaurant_query(num_attributes)
    query = query.replace(
        "descendant::restaurant[", "descendant::restaurant[. is $r][", 1
    )
    return query, ["r"] + variables
