"""Synthetic workloads: documents and queries for examples, tests and benches (S9).

* :mod:`~repro.workloads.bibliography` — bib.xml-style documents and the
  paper's introductory author/title pair query.
* :mod:`~repro.workloads.restaurants` — restaurant listings with ``n``
  attributes, the paper's motivating wide-tuple scenario.
* :mod:`~repro.workloads.query_gen` — random expression generators for
  PPLbin, PPL and HCL⁻, used by property-based tests and scaling benches.
"""

from repro.workloads.bibliography import (
    bibliography_pair_query,
    bibliography_query_xquery_style,
    generate_bibliography,
)
from repro.workloads.restaurants import generate_restaurants, restaurant_query
from repro.workloads.query_gen import (
    random_hcl_formula,
    random_ppl_expression,
    random_pplbin_expression,
)

__all__ = [
    "generate_bibliography",
    "bibliography_pair_query",
    "bibliography_query_xquery_style",
    "generate_restaurants",
    "restaurant_query",
    "random_pplbin_expression",
    "random_ppl_expression",
    "random_hcl_formula",
]
