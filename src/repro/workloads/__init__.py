"""Synthetic workloads: documents and queries for examples, tests and benches (S9).

* :mod:`~repro.workloads.bibliography` — bib.xml-style documents and the
  paper's introductory author/title pair query.
* :mod:`~repro.workloads.restaurants` — restaurant listings with ``n``
  attributes, the paper's motivating wide-tuple scenario.
* :mod:`~repro.workloads.query_gen` — random expression generators for
  PPLbin, PPL and HCL⁻, used by property-based tests and scaling benches.
* :mod:`~repro.workloads.corpus_gen` — multi-document corpora with
  controllable size skew, for the corpus store/executor and experiment E10.
"""

from repro.workloads.bibliography import (
    bibliography_pair_query,
    bibliography_query_xquery_style,
    generate_bibliography,
)
from repro.workloads.restaurants import generate_restaurants, restaurant_query
from repro.workloads.query_gen import (
    random_hcl_formula,
    random_ppl_expression,
    random_pplbin_expression,
)
from repro.workloads.corpus_gen import (
    CORPUS_KINDS,
    corpus_scales,
    generate_corpus,
    write_corpus,
)

__all__ = [
    "CORPUS_KINDS",
    "corpus_scales",
    "generate_corpus",
    "write_corpus",
    "generate_bibliography",
    "bibliography_pair_query",
    "bibliography_query_xquery_style",
    "generate_restaurants",
    "restaurant_query",
    "random_pplbin_expression",
    "random_ppl_expression",
    "random_hcl_formula",
]
