"""Keep derived, lazily-cached AST state out of pickles.

Every AST base in this library (:class:`repro.xpath.ast._Expr`,
:class:`repro.hcl.ast.HclExpr`, :class:`repro.pplbin.ast.BinExpr`,
:class:`repro.fo.ast.Formula`) memoises derived attributes — ``size``,
``free_variables``, ``quantifier_rank`` — with :func:`functools.cached_property`,
which stores the computed value in the instance ``__dict__`` right next to the
dataclass fields.  The default pickle therefore ships every memoised value of
every node: compiling a query populates the caches on each AST node it checks,
and a compiled plan's pickle grows ~40% larger (and correspondingly slower to
load) than the same plan freshly parsed.  That tax lands exactly where pickles
matter — the :mod:`repro.serve.plancache` plan files and the query payloads
shipped to :mod:`repro.corpus` worker processes.

:func:`strip_cached_properties` is a drop-in ``__getstate__`` body: it returns
the instance state minus every ``cached_property`` slot declared anywhere in
the class's MRO, so pickles (and ``copy.deepcopy``, which routes through the
same reduce protocol) carry only the defining fields.  The dropped values are
recomputed lazily on first use after load — semantics are unchanged, the
caches just start cold.
"""

from __future__ import annotations

from functools import cached_property

#: Per-class memo of which attribute names are ``cached_property`` slots.
_CACHE_NAMES: dict[type, frozenset[str]] = {}


def cached_property_names(cls: type) -> frozenset[str]:
    """The names of every ``cached_property`` declared in ``cls``'s MRO."""
    names = _CACHE_NAMES.get(cls)
    if names is None:
        names = frozenset(
            name
            for klass in cls.__mro__
            for name, value in vars(klass).items()
            if isinstance(value, cached_property)
        )
        _CACHE_NAMES[cls] = names
    return names


def strip_cached_properties(obj: object) -> dict:
    """Instance state with every memoised ``cached_property`` value removed.

    Intended as the body of ``__getstate__`` on AST bases; the returned dict
    holds only genuine fields, so pickling an AST costs the same whether or
    not its derived attributes were ever computed.
    """
    state = obj.__dict__
    names = cached_property_names(type(obj))
    if not names.intersection(state):
        return dict(state)
    return {key: value for key, value in state.items() if key not in names}
