"""Newline-delimited-JSON wire protocol over asyncio streams (TCP or stdio).

One JSON object per line, both directions.  Requests carry an ``op`` and a
client-chosen ``id`` that is echoed on every response line, so a client may
pipeline several submissions over one connection and demultiplex by id.

Requests
--------
``{"op": "submit", "id": 1, "query": "...", "vars": ["y","z"]}``
    Answer one query on every document (or ``"docs": [...]`` a subset);
    ``"engine"`` and ``"ordered"`` are optional.  Several queries can be
    submitted at once with ``"queries": [["<expr>", ["y"]], ...]`` instead
    of ``query``/``vars``.
``{"op": "stats", "id": 2}``
    A :class:`repro.serve.server.ServerStats` snapshot.
``{"op": "ping", "id": 3}``
    Liveness check.
``{"op": "health", "id": 7}``
    Health probe mirroring the HTTP ``/healthz`` payload: ``{"id": 7,
    "type": "health", "status": "ok"|"degraded", "documents": ...,
    "in_flight": ..., "draining": ...}`` plus a ``faults`` block while any
    shard pool is running degraded.
``{"op": "metrics", "id": 5}``
    The server's telemetry in Prometheus text exposition format:
    ``{"id": 5, "type": "metrics", "content_type":
    "text/plain; version=0.0.4", "body": "..."}``.  Scrape by piping
    ``repro-xpath obs metrics`` into a textfile collector, or bridge the
    op from any exporter sidecar.
``{"op": "slowlog", "id": 6, "limit": 10}``
    Recent slow-query log entries (newest first; ``limit`` optional):
    ``{"id": 6, "type": "slowlog", "threshold": ..., "entries": [...]}``.
    Entries carry the query, document, seconds, queue wait and — when
    tracing was on — the span breakdown.
``{"op": "cancel", "id": 4, "target": 1}``
    Abort the streamed submission this client submitted under id
    ``target``, mid-flight.  The cancel is mapped onto the submission's
    :class:`repro.session.CancellationToken`: outstanding document jobs are
    cancelled, already-queued results still arrive, and the target's stream
    terminates with a ``done`` line carrying ``"cancelled": true``.  The
    reply is ``{"id": 4, "type": "cancelled", "target": 1, "found": ...}``
    — ``found`` is false when no live submission has that id (already
    finished, or never existed).

Authentication and quotas (from the server's
:class:`repro.session.ServingPolicy`): when ``auth_token`` is set, every
request must carry ``"auth": "<token>"`` or it is refused with a typed
``unauthorized`` error line; ``max_submissions_per_client`` bounds the
number of concurrently streaming submissions per connection (excess is a
typed ``overloaded`` rejection); ``max_request_bytes`` bounds request-line
size.

Responses
---------
``{"id": 1, "type": "result", "doc": ..., "query": ..., "answers": [[...]],
"count": n, "seconds": s}``
    One line per (document, query) pair, streamed as results complete.
``{"id": 1, "type": "done", "results": n, "cancelled": false}``
    Terminates a submission's stream.
``{"id": 1, "type": "error", "error": "...", "kind": "overloaded"}``
    Submission-level failure (parse error, overload, unknown document ...).
    ``kind`` is ``"overloaded"``, ``"closed"``, ``"bad-request"``,
    ``"unauthorized"`` or ``"error"``, so clients can implement retry
    policies without matching on message text.

Backpressure propagates end to end: every result line awaits both the
submission queue and the transport's ``drain()``, so a slow TCP reader
slows only its own submissions.
"""

from __future__ import annotations

import asyncio
import hmac
import json
from typing import AsyncIterator, Optional

from repro.errors import ReproError
from repro.serve.server import (
    CorpusServer,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.session.policy import ServingPolicy
from repro.session.tokens import CancellationToken


#: StreamReader buffer limit for request lines.  asyncio's 64 KiB default is
#: too small for the documented pipelined ``"queries": [...]`` form over a
#: real workload; a line beyond even this limit gets a typed error line
#: instead of a silently dropped connection.  This is the fallback —
#: ``ServingPolicy.max_request_bytes`` overrides it per server.
READ_LIMIT = 16 * 1024 * 1024


class UnauthorizedError(ReproError):
    """Request refused: missing or wrong ``auth`` token."""


def _submit_items(request: dict) -> list[tuple[str, tuple[str, ...]]]:
    """The (expression, variables) pairs of a submit request.

    Shared with the cluster member protocol, which re-parses the same
    request shape before scattering it across shard owners.
    """
    if "queries" in request:
        return [(text, tuple(variables)) for text, variables in request["queries"]]
    if "query" in request:
        return [(request["query"], tuple(request.get("vars", ())))]
    raise ValueError("submit needs 'query' or 'queries'")


def _client_of(writer: "asyncio.StreamWriter") -> Optional[str]:
    """The connection's peer as a ``host:port`` string for cost attribution.

    A stdio transport (``serve stdio``) has no peername; ``None`` lets the
    server fall back to its ``"anonymous"`` bucket.
    """
    peer = writer.get_extra_info("peername")
    if not peer:
        return None
    if isinstance(peer, (tuple, list)) and len(peer) >= 2:
        return f"{peer[0]}:{peer[1]}"
    return str(peer)


def _error_kind(error: Exception) -> str:
    if isinstance(error, UnauthorizedError):
        return "unauthorized"
    if isinstance(error, ServerOverloadedError):
        return "overloaded"
    if isinstance(error, ServerClosedError):
        return "closed"
    if isinstance(error, (ValueError, KeyError, ReproError)):
        return "bad-request"
    return "error"


class _Connection:
    """Per-connection protocol state: live submissions, addressable by id.

    ``tokens`` maps the client's submission id to the
    :class:`CancellationToken` wired to that submission's stream; the
    ``cancel`` op resolves ids here.  Entries are removed when the stream
    finishes, so the map size doubles as the per-client active-submission
    count for the admission quota.
    """

    def __init__(self) -> None:
        self.tokens: dict[object, CancellationToken] = {}


class ProtocolServer:
    """Bridges an NDJSON stream pair onto a :class:`CorpusServer`.

    One instance can serve many connections; per-connection state is local
    to :meth:`handle_connection`.  Auth, per-client quotas and the request
    size limit come from the server's :class:`ServingPolicy`; cancellation
    tokens come from the owning session when there is one
    (:meth:`repro.session.Session.protocol`), so in-process holders of the
    session can observe and fire the same tokens.
    """

    def __init__(self, server: CorpusServer, *, session=None, extensions=None) -> None:
        self.server = server
        self.session = session if session is not None else getattr(server, "session", None)
        self.policy: ServingPolicy = getattr(server, "policy", None) or ServingPolicy()
        #: Extra ops: ``op name -> async callable(request dict) -> payload
        #: dict``; the reply line is the payload under ``{"id": ...,
        #: "type": <op>}``.  This is how the cluster member protocol mounts
        #: its ``cluster.*`` control ops without the base protocol knowing
        #: about clustering.  Auth applies to extension ops like any other.
        self.extensions: dict = dict(extensions or {})

    def _new_token(self) -> CancellationToken:
        if self.session is not None:
            return self.session.cancellation_token()
        return CancellationToken()

    # -------------------------------------------------------------- transports
    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Return an ``asyncio.base_events.Server`` accepting NDJSON clients.

        With ``port=0`` the kernel picks a free port —
        ``server.sockets[0].getsockname()[1]`` reveals it (used by tests and
        by the CLI's startup banner).
        """
        return await asyncio.start_server(
            self.handle_connection,
            host,
            port,
            limit=self.policy.max_request_bytes or READ_LIMIT,
        )

    async def handle_connection(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        """Serve one client: read request lines, spawn a task per submission."""
        write_lock = asyncio.Lock()
        pending: set["asyncio.Task"] = set()
        connection = _Connection()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Request line beyond the reader limit: the buffer state
                    # is unrecoverable mid-line, so reply with a typed error
                    # and close instead of dying with an unhandled exception.
                    try:
                        await self._send(
                            writer,
                            write_lock,
                            {
                                "id": None,
                                "type": "error",
                                "error": "request line too long",
                                "kind": "bad-request",
                            },
                        )
                    except (ConnectionError, OSError):
                        pass
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock, connection)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Cancelled here means the loop is shutting down while the
                # transport flushes; the connection is already closed, and
                # ending the handler normally avoids asyncio's noisy
                # "exception was never retrieved" callback for it.
                pass

    # ---------------------------------------------------------------- dispatch
    async def _handle_line(
        self,
        line: bytes,
        writer: "asyncio.StreamWriter",
        lock: "asyncio.Lock",
        connection: "_Connection",
    ) -> None:
        request_id: Optional[object] = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op", "submit")
            if self.policy.auth_token is not None and not hmac.compare_digest(
                # Constant-time comparison: a plain != short-circuits on the
                # first differing byte, leaking the token through response
                # timing on a network-facing check.
                str(request.get("auth", "")),
                self.policy.auth_token,
            ):
                raise UnauthorizedError(
                    "missing or invalid 'auth' token"
                    if "auth" in request
                    else "this server requires an 'auth' token on every request"
                )
            if op == "ping":
                await self._send(writer, lock, {"id": request_id, "type": "pong"})
            elif op == "stats":
                await self._send(
                    writer,
                    lock,
                    {
                        "id": request_id,
                        "type": "stats",
                        "stats": self.server.stats.to_dict(),
                    },
                )
            elif op == "metrics":
                await self._send(
                    writer,
                    lock,
                    {
                        "id": request_id,
                        "type": "metrics",
                        "content_type": "text/plain; version=0.0.4",
                        "body": self.server.metrics_text(),
                    },
                )
            elif op == "health":
                await self._send(
                    writer,
                    lock,
                    {
                        "id": request_id,
                        "type": "health",
                        **self.server._health_payload(),
                    },
                )
            elif op == "slowlog":
                limit = request.get("limit")
                await self._send(
                    writer,
                    lock,
                    {
                        "id": request_id,
                        "type": "slowlog",
                        "threshold": self.server.slowlog.threshold,
                        "entries": self.server.slowlog.entries(limit),
                    },
                )
            elif op == "cancel":
                await self._handle_cancel(request, request_id, writer, lock, connection)
            elif op == "submit":
                await self._handle_submit(request, request_id, writer, lock, connection)
            elif op in self.extensions:
                payload = await self.extensions[op](request)
                await self._send(
                    writer, lock, {"id": request_id, "type": op, **payload}
                )
            else:
                raise ValueError(f"unknown op {op!r}")
        except asyncio.CancelledError:
            raise
        except ConnectionError:
            pass  # client went away mid-stream; nothing left to tell it
        except Exception as error:
            try:
                await self._send(
                    writer,
                    lock,
                    {
                        "id": request_id,
                        "type": "error",
                        "error": str(error),
                        "kind": _error_kind(error),
                    },
                )
            except (ConnectionError, OSError):
                pass

    async def _handle_cancel(
        self,
        request: dict,
        request_id: Optional[object],
        writer: "asyncio.StreamWriter",
        lock: "asyncio.Lock",
        connection: "_Connection",
    ) -> None:
        """Fire the cancellation token of one of this client's submissions."""
        if "target" not in request:
            raise ValueError("cancel needs 'target' (the submission's id)")
        target = request["target"]
        token = connection.tokens.get(target)
        if token is not None:
            token.cancel("cancel op from client")
        await self._send(
            writer,
            lock,
            {
                "id": request_id,
                "type": "cancelled",
                "target": target,
                "found": token is not None,
            },
        )

    async def _handle_submit(
        self,
        request: dict,
        request_id: Optional[object],
        writer: "asyncio.StreamWriter",
        lock: "asyncio.Lock",
        connection: "_Connection",
    ) -> None:
        items = _submit_items(request)
        if request_id in connection.tokens:
            # A reused id would overwrite the live submission's token (and
            # the first stream's cleanup would then delete the second's),
            # corrupting cancel addressing and the quota count.
            raise ValueError(
                f"submission id {request_id!r} is already in use on this "
                "connection; wait for its 'done' line or pick another id"
            )
        quota = self.policy.max_submissions_per_client
        if quota is not None and len(connection.tokens) >= quota:
            raise ServerOverloadedError(
                f"per-client submission quota reached "
                f"({len(connection.tokens)} active, limit {quota})"
            )
        # The token is registered *before* the (possibly slow, off-loop)
        # compile inside submit, so a pipelined cancel op can land even
        # while its target is still compiling; on_cancel fires immediately
        # when the token was already cancelled by then.
        token = self._new_token()
        connection.tokens[request_id] = token
        try:
            submission = await self.server.submit(
                items,
                request.get("docs"),
                engine=request.get("engine"),
                ordered=bool(request.get("ordered", True)),
                client=_client_of(writer),
            )
        except BaseException:
            connection.tokens.pop(request_id, None)
            raise
        token.on_cancel(submission.cancel)
        delivered = 0
        try:
            async for result in submission:
                await self._send(
                    writer,
                    lock,
                    {
                        "id": request_id,
                        "type": "result",
                        "doc": result.doc_name,
                        "query": result.query,
                        "variables": list(result.variables),
                        "answers": sorted(list(answer) for answer in result.answers),
                        "count": len(result.answers),
                        "seconds": result.seconds,
                    },
                )
                delivered += 1
        except (asyncio.CancelledError, ConnectionError, OSError):
            # The client went away mid-stream (or the connection handler is
            # shutting down): abort the submission's outstanding document
            # jobs instead of evaluating a corpus for a dead reader.
            submission.cancel()
            raise
        finally:
            # The stream ended (normally, cancelled, or by disconnect):
            # the id is no longer cancellable and stops counting against
            # the per-client quota.
            connection.tokens.pop(request_id, None)
        await self._send(
            writer,
            lock,
            {
                "id": request_id,
                "type": "done",
                "results": delivered,
                "cancelled": submission.cancelled,
            },
        )

    async def _send(
        self, writer: "asyncio.StreamWriter", lock: "asyncio.Lock", payload: dict
    ) -> None:
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
        async with lock:
            writer.write(data)
            await writer.drain()


# -------------------------------------------------------------------- client
async def request_lines(
    host: str, port: int, request: dict
) -> AsyncIterator[dict]:
    """Tiny NDJSON client: send one request, yield response lines until done.

    Yields every response object for the request's id; stops after the
    first non-``result`` line (``done``, ``error``, ``stats``, ``pong``,
    ``metrics``, ``slowlog``, a ``cluster.*`` reply, ...).  Used by the
    CLI's ``serve query`` / ``serve stats`` / ``obs metrics`` /
    ``obs slowlog`` subcommands, the cluster member's peer relay, and
    handy in tests.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                return
            payload = json.loads(line)
            yield payload
            # Every response is terminal except the streamed "result" lines
            # of a submission (which end with "done"/"error").  Keyed on the
            # one non-terminal type so extension ops (``cluster.*``) are
            # covered without enumeration.
            if payload.get("type") != "result":
                return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
