"""Newline-delimited-JSON wire protocol over asyncio streams (TCP or stdio).

One JSON object per line, both directions.  Requests carry an ``op`` and a
client-chosen ``id`` that is echoed on every response line, so a client may
pipeline several submissions over one connection and demultiplex by id.

Requests
--------
``{"op": "submit", "id": 1, "query": "...", "vars": ["y","z"]}``
    Answer one query on every document (or ``"docs": [...]`` a subset);
    ``"engine"`` and ``"ordered"`` are optional.  Several queries can be
    submitted at once with ``"queries": [["<expr>", ["y"]], ...]`` instead
    of ``query``/``vars``.
``{"op": "stats", "id": 2}``
    A :class:`repro.serve.server.ServerStats` snapshot.
``{"op": "ping", "id": 3}``
    Liveness check.

Responses
---------
``{"id": 1, "type": "result", "doc": ..., "query": ..., "answers": [[...]],
"count": n, "seconds": s}``
    One line per (document, query) pair, streamed as results complete.
``{"id": 1, "type": "done", "results": n, "cancelled": false}``
    Terminates a submission's stream.
``{"id": 1, "type": "error", "error": "...", "kind": "overloaded"}``
    Submission-level failure (parse error, overload, unknown document ...).
    ``kind`` is ``"overloaded"``, ``"closed"``, ``"bad-request"`` or
    ``"error"``, so clients can implement retry policies without matching
    on message text.

Backpressure propagates end to end: every result line awaits both the
submission queue and the transport's ``drain()``, so a slow TCP reader
slows only its own submissions.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Optional

from repro.errors import ReproError
from repro.serve.server import (
    CorpusServer,
    ServerClosedError,
    ServerOverloadedError,
)


#: StreamReader buffer limit for request lines.  asyncio's 64 KiB default is
#: too small for the documented pipelined ``"queries": [...]`` form over a
#: real workload; a line beyond even this limit gets a typed error line
#: instead of a silently dropped connection.
READ_LIMIT = 16 * 1024 * 1024


def _error_kind(error: Exception) -> str:
    if isinstance(error, ServerOverloadedError):
        return "overloaded"
    if isinstance(error, ServerClosedError):
        return "closed"
    if isinstance(error, (ValueError, KeyError, ReproError)):
        return "bad-request"
    return "error"


class ProtocolServer:
    """Bridges an NDJSON stream pair onto a :class:`CorpusServer`.

    One instance can serve many connections; per-connection state is local
    to :meth:`handle_connection`.
    """

    def __init__(self, server: CorpusServer) -> None:
        self.server = server

    # -------------------------------------------------------------- transports
    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Return an ``asyncio.base_events.Server`` accepting NDJSON clients.

        With ``port=0`` the kernel picks a free port —
        ``server.sockets[0].getsockname()[1]`` reveals it (used by tests and
        by the CLI's startup banner).
        """
        return await asyncio.start_server(
            self.handle_connection, host, port, limit=READ_LIMIT
        )

    async def handle_connection(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        """Serve one client: read request lines, spawn a task per submission."""
        write_lock = asyncio.Lock()
        pending: set["asyncio.Task"] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Request line beyond the reader limit: the buffer state
                    # is unrecoverable mid-line, so reply with a typed error
                    # and close instead of dying with an unhandled exception.
                    try:
                        await self._send(
                            writer,
                            write_lock,
                            {
                                "id": None,
                                "type": "error",
                                "error": "request line too long",
                                "kind": "bad-request",
                            },
                        )
                    except (ConnectionError, OSError):
                        pass
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Cancelled here means the loop is shutting down while the
                # transport flushes; the connection is already closed, and
                # ending the handler normally avoids asyncio's noisy
                # "exception was never retrieved" callback for it.
                pass

    # ---------------------------------------------------------------- dispatch
    async def _handle_line(
        self, line: bytes, writer: "asyncio.StreamWriter", lock: "asyncio.Lock"
    ) -> None:
        request_id: Optional[object] = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op", "submit")
            if op == "ping":
                await self._send(writer, lock, {"id": request_id, "type": "pong"})
            elif op == "stats":
                await self._send(
                    writer,
                    lock,
                    {
                        "id": request_id,
                        "type": "stats",
                        "stats": self.server.stats.to_dict(),
                    },
                )
            elif op == "submit":
                await self._handle_submit(request, request_id, writer, lock)
            else:
                raise ValueError(f"unknown op {op!r}")
        except asyncio.CancelledError:
            raise
        except ConnectionError:
            pass  # client went away mid-stream; nothing left to tell it
        except Exception as error:
            try:
                await self._send(
                    writer,
                    lock,
                    {
                        "id": request_id,
                        "type": "error",
                        "error": str(error),
                        "kind": _error_kind(error),
                    },
                )
            except (ConnectionError, OSError):
                pass

    async def _handle_submit(
        self,
        request: dict,
        request_id: Optional[object],
        writer: "asyncio.StreamWriter",
        lock: "asyncio.Lock",
    ) -> None:
        if "queries" in request:
            items = [
                (text, tuple(variables)) for text, variables in request["queries"]
            ]
        elif "query" in request:
            items = [(request["query"], tuple(request.get("vars", ())))]
        else:
            raise ValueError("submit needs 'query' or 'queries'")
        submission = await self.server.submit(
            items,
            request.get("docs"),
            engine=request.get("engine"),
            ordered=bool(request.get("ordered", True)),
        )
        delivered = 0
        try:
            async for result in submission:
                await self._send(
                    writer,
                    lock,
                    {
                        "id": request_id,
                        "type": "result",
                        "doc": result.doc_name,
                        "query": result.query,
                        "variables": list(result.variables),
                        "answers": sorted(list(answer) for answer in result.answers),
                        "count": len(result.answers),
                        "seconds": result.seconds,
                    },
                )
                delivered += 1
        except (asyncio.CancelledError, ConnectionError, OSError):
            # The client went away mid-stream (or the connection handler is
            # shutting down): abort the submission's outstanding document
            # jobs instead of evaluating a corpus for a dead reader.
            submission.cancel()
            raise
        await self._send(
            writer,
            lock,
            {
                "id": request_id,
                "type": "done",
                "results": delivered,
                "cancelled": submission.cancelled,
            },
        )

    async def _send(
        self, writer: "asyncio.StreamWriter", lock: "asyncio.Lock", payload: dict
    ) -> None:
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
        async with lock:
            writer.write(data)
            await writer.drain()


# -------------------------------------------------------------------- client
async def request_lines(
    host: str, port: int, request: dict
) -> AsyncIterator[dict]:
    """Tiny NDJSON client: send one request, yield response lines until done.

    Yields every response object for the request's id; stops after a
    ``done``, ``error``, ``stats`` or ``pong`` line.  Used by the CLI's
    ``serve query`` / ``serve stats`` subcommands and handy in tests.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                return
            payload = json.loads(line)
            yield payload
            if payload.get("type") in ("done", "error", "stats", "pong"):
                return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
