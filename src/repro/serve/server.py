"""The asyncio serving core: concurrent submissions over a corpus executor.

See the package docstring (:mod:`repro.serve`) for the architecture.  In
short: :class:`CorpusServer` accepts concurrently-submitted query batches,
expands each into per-document jobs, pushes the jobs through the blocking
:class:`repro.corpus.CorpusExecutor` via its ``submit_document`` hook (the
event loop never blocks — shard pools and dispatch threads do the work), and
streams per-document answers back through a bounded per-client queue.

Flow control has three independent knobs:

* ``max_concurrent`` — a semaphore bounding documents being *evaluated* at
  once, server-wide;
* ``max_queue`` — an admission bound on documents admitted but not finished;
  a submission that would overflow it while other work is pending is
  rejected whole with :class:`ServerOverloadedError` (fail fast beats
  unbounded buffering).  On an otherwise idle server any single submission
  is admitted regardless of size — overload is load-dependent, never
  structural, so big corpora stay servable with default limits;
* ``stream_buffer`` — the per-submission result queue size; a slow consumer
  stalls only its own submission's delivery (per-client backpressure), never
  the server loop or other clients.

Shutdown is graceful by default: :meth:`CorpusServer.drain` stops admission
and waits for in-flight submissions, :meth:`CorpusServer.aclose` then tears
down the executor pools.  :meth:`Submission.cancel` aborts one stream
mid-flight without touching the rest of the server.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import AsyncIterator, Iterable, Optional, Sequence, Union

from repro.errors import ReproError
from repro.api.document import BatchItem, iter_batch
from repro.api.query import Query, compile_query
from repro.api.registry import DEFAULT_ENGINE
from repro.corpus.executor import CorpusExecutor, CorpusResult
from repro.corpus.store import CorpusError, DocumentStore
from repro.obs import trace as _trace
from repro.obs.http import OBS_PORT_ENV, ObsHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.pplbin import bitmatrix as _bitmatrix
from repro.serve.plancache import ANY_ENGINE, PlanCache
from repro.session.policy import ExecutionPolicy, ServingPolicy

#: Prometheus names of the server's two latency histograms.  ``execution``
#: is seconds from evaluation-slot acquisition to completion of one
#: document's jobs (the meaning the old sliding window had); ``queue_wait``
#: is seconds from admission to slot acquisition, so overload tail growth
#: is visible instead of hiding in front of the old measurement start.
EXECUTION_HISTOGRAM = "repro_request_execution_seconds"
QUEUE_WAIT_HISTOGRAM = "repro_request_queue_wait_seconds"


class ServeError(ReproError):
    """Base class of serving-layer errors."""


class ServerClosedError(ServeError):
    """Submission refused because the server is draining or closed."""


class ServerOverloadedError(ServeError):
    """Submission refused because the admission queue is full."""


#: Queue sentinel marking the end of a submission's result stream.
_DONE = object()


@dataclass(frozen=True)
class ServerStats:
    """A telemetry snapshot of one :class:`CorpusServer`.

    Latency quantiles come from the server's mergeable
    :class:`repro.obs.metrics.Histogram` of per-document *execution*
    latencies (seconds from evaluation-slot acquisition to completion of
    that document's jobs — the same meaning the pre-obs sliding window
    had); ``queue_wait_*`` quantiles are the separate admission-to-slot
    histogram, so overload shows up as queue-wait tail growth instead of
    being invisible.  ``uptime_seconds``/``stats_at`` are monotonic
    (``time.monotonic``), so two scrapes can turn counters into rates.
    ``answer_cache`` reflects the parent store's shared cache; under the
    process strategy the per-worker caches live in the shard workers —
    aggregate them with the (blocking)
    :meth:`repro.corpus.CorpusExecutor.answer_cache_stats` instead, off the
    event loop.
    """

    submitted: int
    completed: int
    rejected: int
    cancelled: int
    failed: int
    in_flight: int
    queued: int
    active_submissions: int
    p50_latency: Optional[float] = None
    p95_latency: Optional[float] = None
    plan_cache: Optional[dict] = None
    answer_cache: Optional[dict] = None
    matrix_cache: Optional[dict] = None
    snapshot: Optional[dict] = None
    kernel: Optional[str] = None
    p90_latency: Optional[float] = None
    p99_latency: Optional[float] = None
    queue_wait_p50: Optional[float] = None
    queue_wait_p90: Optional[float] = None
    queue_wait_p95: Optional[float] = None
    queue_wait_p99: Optional[float] = None
    latency: Optional[dict] = None
    queue_wait: Optional[dict] = None
    uptime_seconds: Optional[float] = None
    stats_at: Optional[float] = None
    slow_queries: int = 0
    #: Per-client resource-accounting totals: client identity -> summed
    #: ``QueryReport.cost`` fields plus ``queries`` (cost blocks folded in)
    #: and ``queue_wait`` (seconds of admission-to-slot wait).
    cost_per_client: Optional[dict] = None
    #: Fault-tolerance telemetry from the executor
    #: (:meth:`repro.corpus.CorpusExecutor.fault_stats`): worker restarts,
    #: retries, quarantined documents, degraded shards, recovery timings.
    faults: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "in_flight": self.in_flight,
            "queued": self.queued,
            "active_submissions": self.active_submissions,
            "p50_latency": self.p50_latency,
            "p90_latency": self.p90_latency,
            "p95_latency": self.p95_latency,
            "p99_latency": self.p99_latency,
            "queue_wait_p50": self.queue_wait_p50,
            "queue_wait_p90": self.queue_wait_p90,
            "queue_wait_p95": self.queue_wait_p95,
            "queue_wait_p99": self.queue_wait_p99,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "uptime_seconds": self.uptime_seconds,
            "stats_at": self.stats_at,
            "slow_queries": self.slow_queries,
            "plan_cache": self.plan_cache,
            "answer_cache": self.answer_cache,
            "matrix_cache": self.matrix_cache,
            "snapshot": self.snapshot,
            "kernel": self.kernel,
            "cost_per_client": self.cost_per_client,
            "faults": self.faults,
        }


@dataclass
class Submission:
    """A handle on one accepted submission: an async stream of results.

    Iterate to receive one :class:`repro.corpus.CorpusResult` per
    (document, query) pair — in deterministic document order when the
    submission was made with ``ordered=True`` (default), in completion order
    otherwise.  :meth:`cancel` aborts outstanding work; results already
    queued are still delivered, then the stream ends with ``cancelled``
    set.  A worker exception ends the stream by re-raising on the consumer.
    """

    id: int
    queries: tuple[Query, ...]
    doc_names: tuple[str, ...]
    engine: str
    ordered: bool
    #: Client identity for per-client resource accounting (the protocol
    #: layer passes the connection's peer; ``None`` = anonymous).
    client: Optional[str] = None
    cancelled: bool = False
    _queue: Optional["asyncio.Queue"] = field(repr=False, default=None)
    _task: Optional["asyncio.Task"] = field(repr=False, default=None)
    _error: Optional[BaseException] = field(repr=False, default=None)
    _finished: bool = field(repr=False, default=False)
    #: Set by the producer when the stream ended but the sentinel found no
    #: queue room (abort with a full, unread queue).  Queued results stay
    #: deliverable; the stream ends once the queue drains.
    _done_pending: bool = field(repr=False, default=False)

    def __aiter__(self) -> AsyncIterator[CorpusResult]:
        return self

    async def __anext__(self) -> CorpusResult:
        if self._finished:
            raise StopAsyncIteration
        try:
            item = self._queue.get_nowait()
        except asyncio.QueueEmpty:
            # Queue drained: either the producer flagged the end without
            # room for the sentinel, or we block until it delivers more.
            # No lost-wakeup: the producer sets the flag *before* its final
            # put attempt, and an empty queue means that attempt succeeds.
            item = _DONE if self._done_pending else await self._queue.get()
        if item is _DONE:
            self._finished = True
            if self._error is not None:
                raise self._error
            raise StopAsyncIteration
        return item

    async def results(self) -> list[CorpusResult]:
        """Drain the stream into a list (convenience for non-streaming use)."""
        return [result async for result in self]

    def cancel(self) -> None:
        """Abort outstanding document jobs of this submission."""
        if not self.cancelled and not self._finished and self._task is not None:
            self.cancelled = True
            self._task.cancel()
            # A task cancelled before it ever ran executes no body (and no
            # finally), so the stream must be closed from here: queued
            # results still precede the sentinel, and the flag covers a
            # full queue.  Redundant when the producer's own finally runs.
            self._done_pending = True
            try:
                self._queue.put_nowait(_DONE)
            except asyncio.QueueFull:
                pass

    async def wait(self) -> None:
        """Wait until the submission's producer task has finished."""
        if self._task is not None:
            await asyncio.gather(self._task, return_exceptions=True)


class CorpusServer:
    """Serve concurrently-submitted queries over a document corpus.

    Parameters
    ----------
    store:
        The corpus to serve.
    strategy / max_workers / engine:
        Passed to the underlying :class:`repro.corpus.CorpusExecutor` (one
        is built unless ``executor`` is given).  ``"threads"`` is the
        default here — a serving loop wants submission-level parallelism
        even when each document evaluates in pure Python.
    executor:
        An existing executor to serve from; it is closed by
        :meth:`aclose` only when the server created it itself.
    plan_cache:
        A :class:`repro.serve.plancache.PlanCache` used to resolve
        expression texts; hits skip parse/check/translate entirely, misses
        are compiled once and persisted, so the *next* server start is warm.
    max_concurrent:
        Documents evaluated at once (semaphore width, default 4).
    max_queue:
        Admitted-but-unfinished document bound; a submission that would
        overflow it while other work is pending is rejected with
        :class:`ServerOverloadedError` (an idle server admits any size).
    stream_buffer:
        Per-submission result queue size (per-client backpressure).
    latency_window:
        Accepted for compatibility; latency quantiles now come from
        unbounded mergeable histograms (:mod:`repro.obs.metrics`) rather
        than a bounded window, so the knob no longer limits anything.
    abandon_grace:
        Once the server is draining, a stream whose full queue has gone
        unread for this many seconds is treated as abandoned (consumer gone
        without cancelling) and cancelled, so shutdown can never wedge on a
        vanished client.
    policy:
        A :class:`repro.session.ServingPolicy` supplying the admission /
        backpressure / auth defaults in one object.  The individual keyword
        arguments above override matching policy fields (the documented
        *explicit > policy* precedence); auth and per-client quotas are
        enforced by the protocol layer, which reads them from here.
    session:
        The owning :class:`repro.session.Session`, when the server is that
        session's async surface.  Compilation then routes through the
        session's shared plan memo, so a plan compiled on the sync path is
        the same object this server streams from.

    When the serving policy sets ``obs_port`` (or, failing that, the
    ``REPRO_OBS_PORT`` environment variable names a port), the server also
    starts the stdlib HTTP observability endpoint
    (:class:`repro.obs.http.ObsHTTPServer` — ``/metrics``, ``/healthz``,
    ``/slowlog.json``, ``/traces.ndjson``) on construction and stops it on
    :meth:`aclose`/:meth:`close_nowait`; the bound port is
    ``server.obs_http.port``.
    """

    def __init__(
        self,
        store: DocumentStore,
        *,
        strategy: str = "threads",
        max_workers: Optional[int] = None,
        engine: str = DEFAULT_ENGINE,
        executor: Optional[CorpusExecutor] = None,
        plan_cache: Optional[PlanCache] = None,
        max_concurrent: Optional[int] = None,
        max_queue: Optional[int] = None,
        stream_buffer: Optional[int] = None,
        latency_window: Optional[int] = None,
        abandon_grace: Optional[float] = None,
        policy: Optional[ServingPolicy] = None,
        session=None,
    ) -> None:
        base = policy if policy is not None else ServingPolicy()
        #: The effective serving policy: explicit arguments folded over
        #: ``policy`` (the protocol layer reads auth/quota/size-limit from it).
        self.policy = base.override(
            max_concurrent=max_concurrent,
            max_queue=max_queue,
            stream_buffer=stream_buffer,
            latency_window=latency_window,
            abandon_grace=abandon_grace,
        )
        max_concurrent = self.policy.max_concurrent
        max_queue = self.policy.max_queue
        stream_buffer = self.policy.stream_buffer
        abandon_grace = self.policy.abandon_grace
        if max_concurrent < 1:
            raise ServeError("max_concurrent must be at least 1")
        if max_queue < 1:
            raise ServeError("max_queue must be at least 1")
        if stream_buffer < 1:
            raise ServeError("stream_buffer must be at least 1")
        if abandon_grace <= 0:
            raise ServeError("abandon_grace must be positive")
        self.store = store
        self.engine = engine
        self.plan_cache = plan_cache
        self.session = session
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.stream_buffer = stream_buffer
        self.abandon_grace = abandon_grace
        self._own_executor = executor is None
        if executor is not None:
            self.executor = executor
        else:
            self.executor = CorpusExecutor(
                store, strategy=strategy, max_workers=max_workers, engine=engine
            )
        self._semaphore: Optional[asyncio.Semaphore] = None
        #: Evaluation slots to retire instead of release (see
        #: :meth:`set_max_concurrent`): a concurrency *decrease* cannot take
        #: permits back from jobs already holding them, so the next acquirers
        #: consume this debt by keeping their permit unreleased.
        self._concurrency_debt = 0
        self._tasks: set["asyncio.Task"] = set()
        #: Per-document execution telemetry for cost-aware placement:
        #: ``name -> [count, total_execution_seconds]``.  Bounded by corpus
        #: size; exported by :meth:`doc_latencies` (the cluster supervisor's
        #: measured-cost feed).
        self._doc_latency: dict[str, list] = {}
        #: Mergeable latency histograms (see :mod:`repro.obs.metrics`),
        #: replacing the old bounded deque of recent latencies.
        self.metrics_registry = MetricsRegistry()
        self._execution_hist = self.metrics_registry.histogram(
            EXECUTION_HISTOGRAM,
            "Per-document execution seconds (evaluation slot to completion)",
        )
        self._queue_wait_hist = self.metrics_registry.histogram(
            QUEUE_WAIT_HISTOGRAM,
            "Per-document admission-to-evaluation-slot wait in seconds",
        )
        #: Slow-query log: the owning session's (so sync and async surfaces
        #: share one log), else a fresh one with the environment-resolved
        #: threshold (``REPRO_SLOW_QUERY_SECONDS``; ``None`` = disabled).
        session_slowlog = getattr(session, "slowlog", None)
        self.slowlog: SlowQueryLog = (
            session_slowlog
            if session_slowlog is not None
            else SlowQueryLog(ExecutionPolicy().resolved("slow_query_seconds"))
        )
        self._started_monotonic = time.monotonic()
        self._draining = False
        self._closed = False
        self._next_id = 0
        self._submitted = 0
        self._completed = 0
        self._rejected = 0
        self._cancelled = 0
        self._failed = 0
        self._in_flight = 0
        self._queued = 0
        #: Per-client resource-accounting totals: client identity (the
        #: protocol layer's connection peer, ``"anonymous"`` otherwise) ->
        #: summed ``QueryReport.cost`` fields plus queries/queue_wait.
        self._cost_totals: dict[str, dict] = {}
        #: The stdlib HTTP observability endpoint, when ``policy.obs_port``
        #: (or ``REPRO_OBS_PORT``) asked for one; ``None`` otherwise.
        self.obs_http: Optional[ObsHTTPServer] = None
        obs_port = self.policy.obs_port
        if obs_port is None:
            raw = os.environ.get(OBS_PORT_ENV, "").strip()
            if raw:
                try:
                    obs_port = int(raw)
                except ValueError:
                    obs_port = None
        if obs_port is not None:
            self.obs_http = ObsHTTPServer(
                self.metrics_text,
                slowlog=self.slowlog,
                health=self._health_payload,
                port=obs_port,
            )
            self.obs_http.start()

    def _health_payload(self) -> dict:
        """Liveness fields for ``/healthz`` (and the protocol's health op).

        ``status`` flips from ``"ok"`` to ``"degraded"`` while any shard
        pool has tripped its circuit breaker into in-process serial
        fallback; the fault-telemetry block rides along so an operator can
        see restarts/quarantines from the probe alone.

        ``quarantined`` is always present: the per-shard quarantined
        *document list* (shard index, as a string key, to sorted names —
        empty dict when nothing is quarantined), so a cluster supervisor
        can migrate poisoned documents specifically instead of re-placing
        a whole member's shard blindly.
        """
        degraded = self.executor.degraded_shard_count
        payload = {
            "status": "degraded" if degraded > 0 else "ok",
            "documents": len(self.store),
            "in_flight": self._in_flight,
            "draining": self._draining,
            "quarantined": self.executor.quarantined_by_shard(),
        }
        if degraded:
            payload["faults"] = self.executor.fault_stats()
        return payload

    def set_max_concurrent(self, value: int) -> int:
        """Resize the evaluation semaphore at runtime; returns the old width.

        The cluster supervisor's AIMD autotune calls this between scrapes.
        An increase releases fresh permits immediately; a decrease is
        recorded as *debt* — jobs currently evaluating keep their permits,
        and the next acquirers retire permits instead of starting, so the
        width converges without ever cancelling running work.  Loop-safe:
        must be called from the server's event loop (the protocol layer's
        ``cluster.tune`` op does).
        """
        value = int(value)
        if value < 1:
            raise ServeError("max_concurrent must be at least 1")
        old = self.max_concurrent
        if value == old:
            return old
        self.max_concurrent = value
        self.policy = self.policy.override(max_concurrent=value)
        if self._semaphore is not None:
            if value > old:
                grant = value - old
                # New permits first pay down outstanding debt, then open
                # real slots.
                settled = min(self._concurrency_debt, grant)
                self._concurrency_debt -= settled
                for _ in range(grant - settled):
                    self._semaphore.release()
            else:
                self._concurrency_debt += old - value
        return old

    async def _acquire_slot(self) -> None:
        """Acquire one evaluation slot, retiring permits owed as debt."""
        while True:
            await self._semaphore.acquire()
            if self._concurrency_debt > 0:
                # This permit is retired, not released: the semaphore's
                # effective width just shrank by one.  Single-threaded on
                # the loop, so no race against set_max_concurrent.
                self._concurrency_debt -= 1
                continue
            return

    # ---------------------------------------------------------------- lifecycle
    async def __aenter__(self) -> "CorpusServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def drain(self) -> None:
        """Stop admitting submissions and wait for in-flight work to finish."""
        self._draining = True
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def aclose(self) -> None:
        """Drain, then shut down the executor pools (idempotent)."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        if self.obs_http is not None:
            self.obs_http.close()
        if self._own_executor:
            self.executor.close()

    def close_nowait(self) -> None:
        """Synchronously stop admission, without draining (idempotent).

        For teardown paths that cannot await (``Session.close`` from sync
        code): new submissions are refused with
        :class:`ServerClosedError` immediately, in-flight producer tasks
        are left to the owning loop.  The executor is *not* closed here —
        the caller owns that (a session closes its shared executor itself;
        a server that owns its executor should use :meth:`aclose`).
        """
        self._draining = True
        self._closed = True
        if self.obs_http is not None:
            self.obs_http.close()

    # --------------------------------------------------------------- submission
    def compile(
        self, expression: Union[str, BatchItem], variables: Sequence[str] = ()
    ) -> Query:
        """Compile one expression through the plan cache (if configured).

        When the server belongs to a :class:`repro.session.Session`, the
        session's shared compiled-plan memo does the work instead — the
        returned :class:`Query` is then the *same object* the session's
        sync surface answers with (one plan, both surfaces).
        """
        if isinstance(expression, Query):
            return expression
        if isinstance(expression, tuple):
            expression, variables = expression
        if self.session is not None:
            return self.session.compile(expression, tuple(variables))
        if isinstance(expression, str) and self.plan_cache is not None:
            # Compiled plans carry every translation, so they are engine
            # independent: keyed under the shared ANY_ENGINE label, one
            # cached plan serves every engine (and `serve warm` hits
            # regardless of which --engine the server later runs with).
            return self.plan_cache.get_or_compile(
                expression, tuple(variables), engine=ANY_ENGINE
            )
        return compile_query(expression, tuple(variables), require_ppl=False)

    async def submit(
        self,
        queries: Union[BatchItem, Iterable[BatchItem]],
        documents: Optional[Sequence[str]] = None,
        *,
        engine: Optional[str] = None,
        ordered: bool = True,
        client: Optional[str] = None,
    ) -> Submission:
        """Admit a query batch; returns a :class:`Submission` stream.

        Compilation (including plan-cache disk traffic) runs off the event
        loop; admission is checked after it, atomically with scheduling.
        ``client`` names the submitting client for the per-client cost
        totals on :attr:`stats` (the protocol layer passes the connection
        peer).

        Raises
        ------
        ServerClosedError
            When the server is draining or closed.
        ServerOverloadedError
            When admitting the batch would overflow ``max_queue``.
        CorpusError
            For unknown document names (before any work is scheduled).
        """
        if self._draining or self._closed:
            raise ServerClosedError("the server is draining; no new submissions")
        batch = iter_batch(queries)
        if all(isinstance(item, Query) for item in batch):
            compiled = tuple(batch)
        else:
            # Anything not yet compiled (strings, pairs, bare PathExprs)
            # pays parse/check/translate — off the event loop.
            compiled = tuple(
                await asyncio.to_thread(self._compile_batch, batch)
            )
        if self._draining or self._closed:  # may have started draining meanwhile
            raise ServerClosedError("the server is draining; no new submissions")
        names = tuple(documents) if documents is not None else tuple(self.store.names())
        for name in names:
            if name not in self.store:
                raise CorpusError(f"unknown document {name!r}")
        pending = self._queued + self._in_flight
        # Overload is load-dependent, never structural: an idle server
        # admits a submission of any size (it trickles through the
        # evaluation semaphore), so a corpus larger than max_queue stays
        # servable with default limits and client retries can succeed.
        if pending > 0 and pending + len(names) > self.max_queue:
            self._rejected += 1
            raise ServerOverloadedError(
                f"admission queue full ({pending} pending, "
                f"{len(names)} requested, limit {self.max_queue})"
            )
        if self._semaphore is None:
            self._semaphore = asyncio.Semaphore(self.max_concurrent)
        self._next_id += 1
        self._submitted += 1
        submission = Submission(
            id=self._next_id,
            queries=compiled,
            doc_names=names,
            engine=engine if engine is not None else self.engine,
            ordered=ordered,
            client=client,
        )
        submission._queue = asyncio.Queue(maxsize=self.stream_buffer)
        # Admission slots are reserved *now*, synchronously with the check
        # above — the producer task may not run for a while, and a second
        # submit arriving in between must see the queue as occupied.  Slots
        # not yet handed to a job when the producer finishes (cancelled
        # before start, failed early) are released by the done-callback.
        self._queued += len(names)
        unspawned = {"count": len(names)}
        task = asyncio.create_task(self._run_submission(submission, unspawned))
        submission._task = task
        self._tasks.add(task)

        def _finalise(finished: "asyncio.Task") -> None:
            self._tasks.discard(finished)
            self._queued -= unspawned["count"]
            unspawned["count"] = 0
            if finished.cancelled():
                # Cancelled before the body ran: the producer's own
                # CancelledError accounting never executed.
                self._cancelled += 1

        task.add_done_callback(_finalise)
        return submission

    def _compile_batch(self, batch: list[BatchItem]) -> list[Query]:
        return [self.compile(item) for item in batch]

    async def answer(
        self,
        queries: Union[BatchItem, Iterable[BatchItem]],
        documents: Optional[Sequence[str]] = None,
        *,
        engine: Optional[str] = None,
        ordered: bool = True,
    ) -> list[CorpusResult]:
        """Submit and collect in one await (convenience wrapper)."""
        submission = await self.submit(
            queries, documents, engine=engine, ordered=ordered
        )
        return await submission.results()

    # ----------------------------------------------------------------- internals
    def _spawn_job(self, submission: Submission, name: str) -> "asyncio.Task":
        """Create one admitted document job with leak-proof slot accounting.

        The job takes over one of the admission slots reserved by
        :meth:`submit` and releases it exactly once — normally when it
        acquires an evaluation slot, but via the done-callback when it is
        cancelled before its coroutine ever ran (a cancelled-before-start
        task executes no body code, so the accounting cannot live inside
        the coroutine alone).
        """
        state = {"dequeued": False}

        def dequeue() -> None:
            if not state["dequeued"]:
                state["dequeued"] = True
                self._queued -= 1

        task = asyncio.create_task(self._run_document(submission, name, dequeue))
        task.add_done_callback(lambda _finished: dequeue())
        return task

    async def _run_submission(self, submission: Submission, unspawned: dict) -> None:
        """Producer task: schedule per-document jobs, deliver results in order."""
        jobs = []
        for name in submission.doc_names:
            unspawned["count"] -= 1
            jobs.append(self._spawn_job(submission, name))
        try:
            if submission.ordered:
                for job in jobs:
                    for result in await job:
                        await self._put_result(submission, result)
            else:
                for next_done in asyncio.as_completed(jobs):
                    for result in await next_done:
                        await self._put_result(submission, result)
        except asyncio.CancelledError:
            submission.cancelled = True
            self._cancelled += 1
        except Exception as error:
            submission._error = error
            self._failed += 1
        finally:
            for job in jobs:
                if not job.done():
                    job.cancel()
            await asyncio.gather(*jobs, return_exceptions=True)
            # The sentinel must always arrive, and this task must always
            # terminate (drain()/aclose() gather it).  On the normal path a
            # full queue means a live, slow consumer: a blocking put is
            # correct and preserves every queued result.  On an aborted
            # stream (cancelled or failed) the consumer may be gone for
            # good — a client that disconnected mid-stream — so blocking
            # would wedge the server; drop queued results instead (the
            # stream is ending with ``cancelled``/an error anyway) until
            # the sentinel fits.
            # Flag first, then try the sentinel: if the queue is full the
            # consumer is not blocked on get() and will see the flag once
            # it drains the (still fully deliverable) queue; if the queue
            # is empty the put wakes a blocked consumer.  Never a blocking
            # put — a vanished consumer must not wedge this task (and with
            # it drain()/aclose()), however the stream ended.
            submission._done_pending = True
            try:
                submission._queue.put_nowait(_DONE)
            except asyncio.QueueFull:
                pass

    async def _put_result(self, submission: Submission, result) -> None:
        """Deliver one result without ever wedging shutdown.

        A plain blocking put would hang forever if the consumer stopped
        iterating without cancelling (a vanished client whose stream nobody
        reads).  The put is therefore re-armed periodically; while the
        server is *draining*, a stream whose queue has stayed full past
        ``abandon_grace`` is treated as abandoned and cancelled — the
        cancelled path guarantees the sentinel lands and the task ends.  A
        live slow consumer is unaffected: any successful put resets the
        clock, and outside of drain the producer waits indefinitely.
        """
        # asyncio.wait (not wait_for) on purpose: wait_for swallows this
        # task's cancellation when the put completes in the same loop tick,
        # which would make Submission.cancel() silently lose the race.
        putter = asyncio.ensure_future(submission._queue.put(result))
        unread_since: Optional[float] = None
        try:
            while True:
                done, _ = await asyncio.wait({putter}, timeout=0.25)
                if done:
                    putter.result()
                    return
                if not self._draining:
                    unread_since = None
                    continue
                now = time.perf_counter()
                if unread_since is None:
                    unread_since = now
                elif now - unread_since >= self.abandon_grace:
                    raise asyncio.CancelledError(
                        "stream abandoned: queue unread while draining"
                    )
        finally:
            if not putter.done():
                putter.cancel()
                await asyncio.gather(putter, return_exceptions=True)

    async def _run_document(
        self, submission: Submission, name: str, dequeue
    ) -> list[CorpusResult]:
        """One admitted document job: wait for an evaluation slot, run off-loop."""
        enqueued = time.perf_counter()
        await self._acquire_slot()
        try:
            dequeue()
            self._in_flight += 1
            started = time.perf_counter()
            self._queue_wait_hist.observe(started - enqueued)
            try:
                # Off-loop: under the processes strategy, submitting can
                # repartition shards (blocking pool spawn/shutdown and
                # pickling source specs) — the event loop must not pay
                # that.  The shared `handoff` dict keeps the executor
                # future reachable when this task is cancelled *during*
                # the thread hop: store-then-check on the thread side and
                # set-then-check on the cancel side guarantee at least one
                # of them sees the other, so the future is always
                # cancelled rather than silently evaluated and dropped.
                handoff = {"future": None, "cancelled": False}

                def _submit_off_loop():
                    future = self.executor.submit_document(
                        name, list(submission.queries), engine=submission.engine
                    )
                    handoff["future"] = future
                    if handoff["cancelled"]:
                        future.cancel()
                    return future

                try:
                    future = await asyncio.to_thread(_submit_off_loop)
                except asyncio.CancelledError:
                    handoff["cancelled"] = True
                    if handoff["future"] is not None:
                        handoff["future"].cancel()
                    raise
                results = await asyncio.wrap_future(future)
            finally:
                self._in_flight -= 1
            finished = time.perf_counter()
            elapsed = finished - started
            self._execution_hist.observe(elapsed)
            latency = self._doc_latency.setdefault(name, [0, 0.0])
            latency[0] += 1
            latency[1] += elapsed
            self._completed += 1
            self._account_costs(submission, results, started - enqueued)
            if _trace.enabled():
                # The request lifecycle as a trace: recorded from explicit
                # timestamps (the thread-local span stack would interleave
                # across await points on a shared event-loop thread).
                _trace.record_span(
                    "server.request",
                    enqueued,
                    finished,
                    children=[
                        {"name": "queue.wait", "started": enqueued, "ended": started},
                        {"name": "execute", "started": started, "ended": finished},
                    ],
                    document=name,
                    submission=submission.id,
                )
            if self.slowlog.should_log(elapsed):
                self.slowlog.record(
                    elapsed,
                    query="; ".join(
                        query.text if query.text is not None else query.unparse()
                        for query in submission.queries
                    ),
                    document=name,
                    queue_wait=started - enqueued,
                    trace=next(
                        (r.report.trace for r in results if r.report.trace is not None),
                        None,
                    ),
                )
            return results
        finally:
            self._semaphore.release()

    def _account_costs(
        self, submission: Submission, results: list[CorpusResult], queue_wait: float
    ) -> None:
        """Fold one document job's cost blocks into the per-client totals.

        The labelled *metric* aggregation of the same blocks happens in the
        corpus executor (every strategy observes where it evaluates); this
        is the attribution side — which client spent what — that metrics
        label sets are too coarse for.
        """
        client = submission.client if submission.client is not None else "anonymous"
        totals = self._cost_totals.setdefault(
            client, {"queries": 0, "queue_wait": 0.0}
        )
        totals["queue_wait"] += queue_wait
        for result in results:
            cost = result.report.cost
            if not cost:
                continue
            totals["queries"] += 1
            for cost_field, value in cost.items():
                if isinstance(value, (int, float)):
                    totals[cost_field] = totals.get(cost_field, 0) + value

    # ---------------------------------------------------------------- telemetry
    def doc_latencies(self) -> dict[str, dict]:
        """Per-document observed execution cost: ``name -> {count, seconds,
        mean_seconds}``.

        This is the measured half of the cluster supervisor's cost model
        (tree size is the prior): a member ships it on ``cluster.describe``
        and the supervisor folds it into placement decisions.  Cheap and
        loop-safe.
        """
        return {
            name: {
                "count": count,
                "seconds": total,
                "mean_seconds": total / count if count else 0.0,
            }
            for name, (count, total) in self._doc_latency.items()
        }

    @property
    def stats(self) -> ServerStats:
        """A :class:`ServerStats` snapshot (cheap; safe to poll from the loop)."""
        execution = self._execution_hist
        queue_wait = self._queue_wait_hist
        answer_cache = self.store.answer_cache
        return ServerStats(
            submitted=self._submitted,
            completed=self._completed,
            rejected=self._rejected,
            cancelled=self._cancelled,
            failed=self._failed,
            in_flight=self._in_flight,
            queued=self._queued,
            active_submissions=len(self._tasks),
            p50_latency=execution.quantile(0.50),
            p90_latency=execution.quantile(0.90),
            p95_latency=execution.quantile(0.95),
            p99_latency=execution.quantile(0.99),
            queue_wait_p50=queue_wait.quantile(0.50),
            queue_wait_p90=queue_wait.quantile(0.90),
            queue_wait_p95=queue_wait.quantile(0.95),
            queue_wait_p99=queue_wait.quantile(0.99),
            latency=execution.summary(),
            queue_wait=queue_wait.summary(),
            uptime_seconds=time.monotonic() - self._started_monotonic,
            stats_at=time.monotonic(),
            slow_queries=len(self.slowlog),
            plan_cache=(
                self.plan_cache.stats.to_dict() if self.plan_cache is not None else None
            ),
            answer_cache=(
                answer_cache.stats.to_dict() if answer_cache is not None else None
            ),
            matrix_cache=self.store.matrix_cache_stats().to_dict(),
            snapshot=self.store.snapshot_stats(),
            kernel=_bitmatrix.get_default_kernel().name,
            cost_per_client=(
                {client: dict(totals) for client, totals in self._cost_totals.items()}
                if self._cost_totals
                else None
            ),
            faults=self.executor.fault_stats(),
        )

    def metrics_text(self) -> str:
        """Render the server's telemetry in Prometheus text exposition format."""
        return self.metrics_snapshot().render()

    def metrics_snapshot(self) -> MetricsRegistry:
        """The server's telemetry as one freshly-merged registry.

        Monotonic request counters and point-in-time gauges are mirrored
        into a fresh registry at snapshot time (the integers on ``self``
        stay the source of truth); the two latency histograms are merged
        in bucket-by-bucket.  Cheap and loop-safe, like :attr:`stats` —
        this is both what ``/metrics`` renders and what a cluster member
        ships to its supervisor on ``cluster.describe``.
        """
        registry = MetricsRegistry()
        counters = {
            "repro_server_submitted_total": (self._submitted, "Submissions admitted"),
            "repro_server_completed_total": (self._completed, "Document jobs completed"),
            "repro_server_rejected_total": (self._rejected, "Submissions rejected (overload)"),
            "repro_server_cancelled_total": (self._cancelled, "Submissions cancelled"),
            "repro_server_failed_total": (self._failed, "Submissions failed"),
            "repro_server_slow_queries_total": (len(self.slowlog), "Slow-query log entries"),
        }
        for name, (value, help_text) in counters.items():
            registry.counter(name, help_text).inc(value)
        gauges = {
            "repro_server_in_flight": (self._in_flight, "Documents evaluating now"),
            "repro_server_queued": (self._queued, "Documents admitted, not started"),
            "repro_server_active_submissions": (
                len(self._tasks),
                "Submissions with live producer tasks",
            ),
            "repro_server_uptime_seconds": (
                time.monotonic() - self._started_monotonic,
                "Seconds since server construction (monotonic)",
            ),
        }
        for name, (value, help_text) in gauges.items():
            registry.gauge(name, help_text).set(value)
        cache_sources = {
            "plan_cache": self.plan_cache.stats.to_dict() if self.plan_cache is not None else None,
            "answer_cache": (
                self.store.answer_cache.stats.to_dict()
                if self.store.answer_cache is not None
                else None
            ),
        }
        for cache_name, cache_stats in cache_sources.items():
            if cache_stats is None:
                continue
            for counter_name in ("hits", "misses", "evictions", "stores"):
                value = cache_stats.get(counter_name)
                if value is not None:
                    registry.counter(
                        f"repro_{cache_name}_{counter_name}_total",
                        f"{cache_name} {counter_name}",
                    ).inc(value)
        registry.merge(self.metrics_registry)
        # The executor's parent-side registry carries the labelled latency
        # and cost-counter series for work evaluated in this process
        # (threads/serial strategies, and the parent's share otherwise).
        # Deliberately NOT ``executor.metrics()``: that round-trips every
        # shard worker and would block the event loop mid-scrape.  Worker
        # series are reachable via ``Session.metrics()`` off the loop.
        registry.merge(self.executor.metrics_registry)
        return registry


