"""repro.serve — the asyncio serving layer with a persistent plan cache.

Architecture
============

This package turns the batch-oriented corpus machinery into a *server*:
queries arrive concurrently, answers stream back per document as they
complete, and compiled plans persist across process restarts.  It is the
fourth layer of the stack, strictly on top of the previous three::

    repro.xpath / repro.core / repro.pplbin    expression pipeline
    repro.api                                  Document / Query facade
    repro.corpus                               DocumentStore + CorpusExecutor
    repro.serve                                asyncio front end + plan cache

(:mod:`repro.cluster` scales this layer across processes: N member
servers behind one public port with cost-aware document placement.)

Request path
------------

::

    client ──ndjson──▶ ProtocolServer ──▶ CorpusServer.submit()
                                             │  admission check (max_queue)
                                             │  plan-cache compile (off-loop)
                                             ▼
                                     per-document jobs ──▶ semaphore
                                             │              (max_concurrent)
                                             ▼
                              CorpusExecutor.submit_document()
                                 serial/threads → dispatch thread pool
                                 processes      → the document's shard pool
                                             │
                                 asyncio.wrap_future  (loop never blocks)
                                             ▼
                        bounded per-submission queue ──▶ async iterator
                                             │
    client ◀──ndjson── one "result" line per document, then "done"

Three bounds govern overload behaviour, from the outside in: ``max_queue``
rejects whole submissions when admission is exhausted (clients see a typed
``overloaded`` error and may retry), ``max_concurrent`` bounds evaluation
parallelism, and each submission's ``stream_buffer`` applies per-client
backpressure so one slow reader cannot buffer the corpus into memory.

Warm starts
-----------

Compilation — parse, Definition 1 check, the Fig. 7 HCL⁻(PPLbin) and Fig. 4
PPLbin translations — is document-independent, so its output is worth
keeping.  :class:`repro.serve.plancache.PlanCache` persists compiled
:class:`repro.api.Query` values to disk, content-addressed by (format
version, expression text, variables, engine) with corruption-tolerant loads
and an LRU byte budget; a server restarted over the same workload skips
compilation entirely (experiment E11 measures the startup-to-first-answer
effect).  Targeted shard refresh on the executor side complements it at the
corpus level: adding or discarding documents rebuilds only the affected
shard pools, keeping the remaining workers' caches warm while serving.

Entry points
------------

* :class:`CorpusServer` — in-process asyncio API (``await server.submit``).
* :class:`ProtocolServer` — NDJSON over TCP/stdio for external clients.
* :class:`PlanCache` — the persistent compiled-plan store.
* CLI: ``repro-xpath serve run | query | stats | warm``.
"""

from repro.serve.plancache import ANY_ENGINE, FORMAT_VERSION, PlanCache, PlanCacheStats
from repro.serve.server import (
    CorpusServer,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
    ServerStats,
    Submission,
)
from repro.serve.protocol import ProtocolServer, UnauthorizedError, request_lines

__all__ = [
    "UnauthorizedError",
    "ANY_ENGINE",
    "FORMAT_VERSION",
    "PlanCache",
    "PlanCacheStats",
    "CorpusServer",
    "ServeError",
    "ServerClosedError",
    "ServerOverloadedError",
    "ServerStats",
    "Submission",
    "ProtocolServer",
    "request_lines",
]
