"""Persistent, content-addressed cache of compiled query plans.

Compiling a query is the expensive half of the paper's pipeline: parse the
Core XPath 2.0 syntax, check Definition 1, build the Fig. 7 HCL⁻(PPLbin)
translation and (when variable free) the Fig. 4 PPLbin form.  The result is
a document-independent :class:`repro.api.Query` value — exactly the thing a
server wants to keep across restarts so warm starts answer immediately
instead of recompiling the whole workload.

:class:`PlanCache` stores compiled plans on disk:

* **content-addressed** — the filename is a SHA-256 over the cache format
  version, the expression text, the output-variable tuple and the engine
  label, so a plan can never be served for the wrong source text and a
  format bump silently invalidates every old file;
* **versioned + corruption-tolerant** — payloads carry the format version
  and the addressing fields *inside* the pickle; any load failure
  (truncated file, foreign bytes, version or text mismatch) counts as a
  miss, deletes the offending file, and falls back to compilation — a
  corrupted cache can cost time, never correctness;
* **byte-budgeted** — an optional LRU budget over the total file size,
  enforced on every store by deleting least-recently-*used* plans (hits
  refresh the file mtime);
* **stack-safe** — serialisation rides on :class:`repro.api.Query`'s
  depth-robust pickling, so arbitrarily deep plans round-trip.

The cache is wired into serving through
:meth:`repro.serve.server.CorpusServer`, and into ad-hoc compilation through
:meth:`PlanCache.get_or_compile`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro import faults
from repro.api.query import Query, compile_query
from repro.errors import FaultInjectedError
from repro.obs import trace as _trace

#: Bump when the payload layout (or anything pickled inside it) changes
#: incompatibly; old files then miss by key and are evicted by budget.
FORMAT_VERSION = 1

#: Default engine label when a plan is not tied to a particular backend
#: (compiled Query values carry every translation, so most callers share).
ANY_ENGINE = "any"

_SUFFIX = ".plan"


@dataclass(frozen=True)
class PlanCacheStats:
    """Counters for one cache instance (not persisted across processes)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalid: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalid": self.invalid,
        }


class PlanCache:
    """On-disk LRU cache of compiled :class:`repro.api.Query` plans.

    Parameters
    ----------
    directory:
        Where the ``<sha256>.plan`` files live; created on first use.
    max_bytes:
        Total byte budget over the plan files (``None`` = unbounded).
    """

    def __init__(
        self, directory: Union[str, Path], *, max_bytes: Optional[int] = None
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (or None for unbounded)")
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._invalid = 0

    # ------------------------------------------------------------------- keys
    @staticmethod
    def key(
        expression: str, variables: Sequence[str] = (), engine: str = ANY_ENGINE
    ) -> str:
        """The content address of one plan: SHA-256 hex over the identity.

        The digest covers the cache format version, the exact expression
        text, the output-variable tuple and the engine label, in a framing
        (JSON) that cannot collide across fields.
        """
        identity = json.dumps(
            [FORMAT_VERSION, expression, list(variables), engine],
            separators=(",", ":"),
        )
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()

    def path_for(
        self, expression: str, variables: Sequence[str] = (), engine: str = ANY_ENGINE
    ) -> Path:
        """The file a plan for this identity would be stored at."""
        return self.directory / (self.key(expression, variables, engine) + _SUFFIX)

    # ------------------------------------------------------------------ loads
    def load(
        self, expression: str, variables: Sequence[str] = (), engine: str = ANY_ENGINE
    ) -> Optional[Query]:
        """Return the cached plan, or ``None`` on miss *or any* load failure.

        Never raises for cache trouble: unreadable, truncated, foreign,
        version-skewed or mismatched files are deleted (best-effort) and
        reported as a miss, so a damaged cache degrades to cold compilation.
        """
        path = self.path_for(expression, variables, engine)
        try:
            faults.trip("corrupt_read", key=expression, site="plan_cache")
            blob = path.read_bytes()
        except FaultInjectedError:
            # Injected read corruption: a miss (recompile), but the file on
            # disk is fine — don't unlink it like organic corruption below.
            with self._lock:
                self._misses += 1
            return None
        except OSError:
            with self._lock:
                self._misses += 1
            return None
        try:
            payload = pickle.loads(blob)
            if not isinstance(payload, dict):
                raise ValueError("plan payload is not a dict")
            if payload.get("format") != FORMAT_VERSION:
                raise ValueError("plan format version mismatch")
            if (
                payload.get("text") != expression
                or tuple(payload.get("variables", ())) != tuple(variables)
                or payload.get("engine") != engine
            ):
                raise ValueError("plan identity mismatch")
            query = payload["query"]
            if not isinstance(query, Query):
                raise ValueError("plan payload holds no Query")
        except Exception:
            # Corruption tolerance: drop the bad file and recompile.
            with self._lock:
                self._invalid += 1
                self._misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        with self._lock:
            self._hits += 1
        self._touch(path)
        return query

    def store(
        self,
        query: Query,
        *,
        expression: Optional[str] = None,
        engine: str = ANY_ENGINE,
    ) -> Path:
        """Persist a compiled plan; returns the file written.

        ``expression`` defaults to ``query.unparse()`` — pass the original
        text explicitly when it must match later ``load`` lookups verbatim.
        """
        text = expression if expression is not None else query.unparse()
        path = self.path_for(text, query.variables, engine)
        payload = pickle.dumps(
            {
                "format": FORMAT_VERSION,
                "text": text,
                "variables": list(query.variables),
                "engine": engine,
                "query": query,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        # Unique per writer *thread*: concurrent stores of the same key
        # (two clients miss on one expression simultaneously) must not
        # rename each other's temp file away mid-replace.
        temporary = path.with_suffix(
            ".tmp-%d-%d" % (os.getpid(), threading.get_ident())
        )
        temporary.write_bytes(payload)
        os.replace(temporary, path)
        with self._lock:
            self._stores += 1
        self._enforce_budget()
        return path

    def get_or_compile(
        self,
        expression: str,
        variables: Sequence[str] = (),
        *,
        engine: str = ANY_ENGINE,
        require_ppl: bool = False,
    ) -> Query:
        """One-stop compilation through the cache: load, else compile + store."""
        with _trace.span("plan_cache.lookup") as lookup:
            cached = self.load(expression, variables, engine)
            lookup.set(hit=cached is not None)
        if cached is not None:
            return cached
        with _trace.span("compile"):
            query = compile_query(expression, tuple(variables), require_ppl=require_ppl)
        self.store(query, expression=expression, engine=engine)
        return query

    # -------------------------------------------------------------- housekeeping
    def _touch(self, path: Path) -> None:
        """Refresh the file's mtime so budget eviction is least-recently-used."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _plan_files(self) -> list[Path]:
        try:
            return [entry for entry in self.directory.iterdir() if entry.suffix == _SUFFIX]
        except OSError:
            return []

    def _enforce_budget(self) -> None:
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for path in self._plan_files():
            try:
                status = path.stat()
            except OSError:
                continue
            entries.append((status.st_mtime, status.st_size, path))
            total += status.st_size
        entries.sort()  # oldest mtime first = least recently used
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            with self._lock:
                self._evictions += 1

    def clear(self) -> int:
        """Delete every plan file; returns how many were removed."""
        removed = 0
        for path in self._plan_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------- inspection
    def total_bytes(self) -> int:
        """Current on-disk footprint of the plan files."""
        total = 0
        for path in self._plan_files():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        return len(self._plan_files())

    @property
    def stats(self) -> PlanCacheStats:
        """Snapshot of this instance's counters."""
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                evictions=self._evictions,
                invalid=self._invalid,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanCache({str(self.directory)!r}, max_bytes={self.max_bytes})"
