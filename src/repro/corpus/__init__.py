"""repro.corpus — the sharded multi-document store and parallel executor.

Layered on top of :mod:`repro.api`, this package answers compiled queries
over *collections* of documents instead of one tree at a time:

* :class:`DocumentStore` — named documents from XML strings, files,
  directories or trees; lazy parse; LRU-bounded resident set; per-document
  oracle reuse through :class:`repro.api.Document`;
* :class:`CorpusExecutor` — serial / thread / sharded-process execution of
  one or many queries, streaming ``(doc_name, QueryReport)`` results with a
  deterministic-ordering option;
* :class:`CorpusReport` — per-document timings, hit counts and engine used,
  serialisable with ``to_json()``.

Typical usage::

    from repro.api import compile_query
    from repro.corpus import CorpusExecutor, DocumentStore

    store = DocumentStore.from_directory("corpus/", max_resident=32)
    query = compile_query(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        ["y", "z"],
    )
    with CorpusExecutor(store, strategy="processes", max_workers=4) as executor:
        for doc_name, report in executor.run(query):
            print(doc_name, report.answer_count)
"""

from repro.corpus.cache import AnswerCache, AnswerCacheStats, estimate_answer_bytes
from repro.corpus.store import CorpusError, DocumentSource, DocumentStore, StoreStats
from repro.corpus.executor import (
    STRATEGIES,
    CorpusExecutor,
    CorpusResult,
    answer_corpus,
)
from repro.corpus.report import CorpusEntry, CorpusReport

__all__ = [
    "AnswerCache",
    "AnswerCacheStats",
    "estimate_answer_bytes",
    "CorpusError",
    "DocumentSource",
    "DocumentStore",
    "StoreStats",
    "STRATEGIES",
    "CorpusExecutor",
    "CorpusResult",
    "answer_corpus",
    "CorpusEntry",
    "CorpusReport",
]
