"""The sharded multi-document store: named sources, lazy parse, LRU residency.

A :class:`DocumentStore` maps *names* to document *sources* (XML strings, XML
files or in-memory trees) and materialises them into
:class:`repro.api.Document` instances on first access.  Materialised
documents — and with them the Theorem 2 oracle matrices, which dominate
per-document memory — form the *resident set*, optionally bounded by
``max_resident`` with least-recently-used eviction.  Evicting a document
drops its tree, oracle and caches; the (cheap) source stays registered, so a
later access transparently reparses and rebuilds.

Sources are picklable: :meth:`DocumentStore.source_spec` returns a
``(kind, payload)`` pair that ships to worker processes, where the document
is rebuilt locally.  This is deliberate — the oracle's boolean matrices are
dense ``|t| x |t|`` numpy arrays that are far cheaper to recompute in the
worker than to serialise, so the executor's process strategy ships sources
and answers, never documents (see :mod:`repro.corpus.executor`).  Tree-backed
sources ship as serialised XML for the same reason.

The store is thread-safe: the thread strategy of the executor shares one
store across its pool, so lookups, loads and evictions are guarded by a
lock, with per-name load locks so two threads never parse the same document
twice.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro._deprecation import suppress_deprecations
from repro.errors import ReproError
from repro.trees.tree import Node, Tree
from repro.trees.xml_io import tree_from_xml, tree_from_xml_file, tree_to_xml
from repro.api.document import Document
from repro.corpus.cache import AnswerCache

#: Sentinel for "no explicit matrix budget" (the tree's own default stands) —
#: the one shared instance from :mod:`repro._config`.
from repro._config import UNSET as _UNSET


#: Default byte budget of a store's shared answer cache.  Finite on purpose:
#: answers survive document eviction (see :mod:`repro.corpus.cache`), so an
#: unbounded default would let the memo grow without limit on long-running
#: varied workloads even when ``max_resident`` is tight.
DEFAULT_ANSWER_CACHE_BYTES = 64 << 20


class CorpusError(ReproError):
    """Raised for unknown document names and invalid store configurations."""


@dataclass(frozen=True)
class StoreStats:
    """Counters describing the store's caching behaviour.

    ``loads`` counts every materialisation (including reloads after
    eviction), ``hits`` counts accesses served from the resident set, and
    ``evictions`` counts documents dropped to stay under ``max_resident``.
    The cold-load observability trio: ``parse_count`` counts XML parses
    actually performed, ``snapshot_hits``/``snapshot_misses`` count loads
    served from (or falling past) the snapshot store — so snapshot hit-rate
    is measurable rather than inferred.  Without a ``snapshot_dir`` every
    load parses and the snapshot counters stay at zero.
    """

    loads: int = 0
    hits: int = 0
    evictions: int = 0
    parse_count: int = 0
    snapshot_hits: int = 0
    snapshot_misses: int = 0


@dataclass(frozen=True)
class DocumentSource:
    """One registered document: a name plus where its content comes from.

    Exactly one of ``xml``, ``path`` and ``tree`` is set, matching ``kind``
    (``"xml"``, ``"file"`` or ``"tree"``).
    """

    name: str
    kind: str
    xml: Optional[str] = None
    path: Optional[str] = None
    tree: Optional[Tree] = None

    def load(
        self,
        *,
        cache_answers: bool = True,
        answer_cache: Optional[AnswerCache] = None,
        cache_owner: Optional[object] = None,
        kernel=None,
        matrix_cache_bytes=_UNSET,
        tree: Optional[Tree] = None,
        snapshot_store=None,
        source_digest: Optional[str] = None,
    ) -> Document:
        """Materialise the source into a fresh :class:`Document`.

        Store-managed documents memoise answer sets by default, into the
        store's shared byte-budgeted :class:`AnswerCache` when one is passed
        (``cache_owner`` scopes the entries to this registration, so answers
        survive eviction but die with the source — see
        :mod:`repro.corpus.cache`).  ``tree`` short-circuits parsing (the
        snapshot fast path passes the memmap-backed tree it already
        loaded); ``snapshot_store``/``source_digest`` wire the document's
        answer-spill hook (see :meth:`repro.api.Document.answer`).
        """
        if tree is None:
            if self.kind == "xml":
                tree = tree_from_xml(self.xml)
            elif self.kind == "file":
                tree = tree_from_xml_file(self.path)
            else:
                tree = self.tree
        kwargs = {} if matrix_cache_bytes is _UNSET else {
            "matrix_cache_bytes": matrix_cache_bytes
        }
        with suppress_deprecations():
            return Document(
                tree,
                cache_answers=cache_answers,
                answer_cache=answer_cache,
                cache_owner=cache_owner,
                kernel=kernel,
                snapshot_store=snapshot_store,
                source_digest=source_digest,
                **kwargs,
            )

    def spec(self) -> tuple[str, str]:
        """Return a picklable ``(kind, payload)`` pair for worker processes.

        Tree-backed sources are serialised to XML text: shipping the builder
        nodes would drag the (unpicklably large, matrix-cache-carrying) tree
        along, while the XML round-trips exactly — the paper's data model
        keeps only element structure and names.
        """
        if self.kind == "xml":
            return ("xml", self.xml)
        if self.kind == "file":
            return ("file", self.path)
        return ("xml", tree_to_xml(self.tree))


class DocumentStore:
    """A named collection of documents with a bounded resident set.

    Parameters
    ----------
    max_resident:
        Upper bound on concurrently materialised documents (``None`` =
        unbounded).  The bound is what makes corpus serving memory-safe: a
        corpus can be arbitrarily larger than RAM as long as the working set
        fits, and the executor's process strategy multiplies the budget by
        giving every shard worker its own ``max_resident`` (see
        :class:`repro.corpus.executor.CorpusExecutor`).
    cache_answers:
        Whether materialised documents memoise their answer sets (default
        true).  Memoisation goes through one *shared* byte-accounted
        :class:`repro.corpus.cache.AnswerCache` per store, so answers
        survive document eviction and the memo footprint is bounded
        corpus-wide rather than per document.
    answer_cache_bytes:
        Byte budget of the shared answer cache.  Bounded *by default* (64
        MiB, :data:`DEFAULT_ANSWER_CACHE_BYTES`): answers survive document
        eviction, so without a budget a long-running varied workload would
        grow the memo without limit even under a tight ``max_resident``.
        Pass ``None`` explicitly for an unbounded cache.  The executor's
        process strategy gives every shard worker its own budget of this
        size, mirroring how ``max_resident`` scales out.
    kernel:
        Relation kernel every materialised document evaluates with — a
        name, a :class:`repro.pplbin.bitmatrix.Kernel`, or ``None`` for the
        process default.  An explicit kernel here is *pinned*: it ships to
        the executor's shard workers as part of the store configuration, so
        it beats ``REPRO_KERNEL`` in subprocesses too (the config-precedence
        guarantee of :mod:`repro.session.policy`).
    matrix_cache_bytes:
        When given, every materialised document's tree is rebudgeted to
        this matrix-cache byte budget (``None`` = unbounded); unset leaves
        the tree default (``REPRO_MATRIX_CACHE_BYTES`` or 256 MiB).
    snapshot_dir:
        Directory of the on-disk snapshot store (:mod:`repro.snapshot`).
        When set, XML and file sources materialise *through* it: loads
        prefer a content-addressed columnar snapshot (memmapped, no parse)
        over the source, revalidated against the source's current digest;
        misses parse as usual and write the snapshot for next time.  The
        same store spills answer sets, so a re-registered corpus skips the
        first evaluation too.  Tree-backed sources bypass snapshots (the
        tree is already in memory).
    snapshot_bytes:
        LRU byte budget over the snapshot directory (``None`` = unbounded),
        enforced after each build by access-time eviction.
    """

    def __init__(
        self,
        max_resident: Optional[int] = None,
        *,
        cache_answers: bool = True,
        answer_cache_bytes: Optional[int] = DEFAULT_ANSWER_CACHE_BYTES,
        kernel=None,
        matrix_cache_bytes=_UNSET,
        snapshot_dir: Optional[Union[str, Path]] = None,
        snapshot_bytes: Optional[int] = None,
    ) -> None:
        if max_resident is not None and max_resident < 1:
            raise CorpusError("max_resident must be at least 1 (or None for unbounded)")
        self.max_resident = max_resident
        self.cache_answers = cache_answers
        self.answer_cache_bytes = answer_cache_bytes
        self.kernel = kernel
        self.matrix_cache_bytes = matrix_cache_bytes
        self.snapshot_dir = None if snapshot_dir is None else str(snapshot_dir)
        self.snapshot_bytes = snapshot_bytes
        if snapshot_dir is None:
            self.snapshot_store = None
        else:
            from repro.snapshot.store import SnapshotStore

            self.snapshot_store = SnapshotStore(snapshot_dir, max_bytes=snapshot_bytes)
        self.answer_cache: Optional[AnswerCache] = (
            AnswerCache(max_bytes=answer_cache_bytes) if cache_answers else None
        )
        self._sources: "OrderedDict[str, DocumentSource]" = OrderedDict()
        self._resident: "OrderedDict[str, Document]" = OrderedDict()
        self._lock = threading.Lock()
        self._load_locks: dict[str, threading.Lock] = {}
        self._loads = 0
        self._hits = 0
        self._evictions = 0
        self._parses = 0
        self._snapshot_hits = 0
        self._snapshot_misses = 0
        self._version = 0
        self._tokens: dict[str, int] = {}
        self._next_token = 0

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_directory(
        cls,
        directory: Union[str, Path],
        pattern: str = "*.xml",
        max_resident: Optional[int] = None,
        **store_kwargs,
    ) -> "DocumentStore":
        """Build a store over every file matching ``pattern`` in ``directory``.

        Extra keyword arguments (``cache_answers``, ``answer_cache_bytes``)
        are forwarded to the constructor.
        """
        store = cls(max_resident=max_resident, **store_kwargs)
        store.add_directory(directory, pattern)
        return store

    # ------------------------------------------------------------ registration
    def add_xml(self, name: str, text: str) -> str:
        """Register an XML string under ``name``; parsing is deferred."""
        return self._register(DocumentSource(name=name, kind="xml", xml=text))

    def add_file(self, path: Union[str, Path], name: Optional[str] = None) -> str:
        """Register an XML file, named after its stem unless ``name`` is given.

        Re-registering the same path under the same name is a no-op, so the
        store can double as a path cache (see :func:`repro.api.answer_batch`).
        """
        resolved = str(path)
        key = name if name is not None else Path(resolved).stem
        with self._lock:
            existing = self._sources.get(key)
            if existing is not None and existing.kind == "file" and existing.path == resolved:
                return key
        return self._register(DocumentSource(name=key, kind="file", path=resolved))

    def add_tree(self, name: str, tree: Tree | Node) -> str:
        """Register an in-memory tree under ``name``.

        Note that eviction cannot reclaim the tree itself (the source keeps
        it alive) — only the document wrapper and its answerer.  Because the
        oracle caches its matrices *on the tree*, a reloaded tree-backed
        document keeps its precomputed matrices; XML-backed documents start
        cold.
        """
        if not isinstance(tree, Tree):
            tree = Tree(tree)
        return self._register(DocumentSource(name=name, kind="tree", tree=tree))

    def add_directory(self, directory: Union[str, Path], pattern: str = "*.xml") -> list[str]:
        """Register every file matching ``pattern``, sorted for determinism.

        Returns the registered names (file stems).
        """
        root = Path(directory)
        if not root.is_dir():
            raise CorpusError(f"not a directory: {root}")
        names = []
        for path in sorted(root.glob(pattern)):
            names.append(self.add_file(path))
        return names

    def _register(self, source: DocumentSource) -> str:
        with self._lock:
            if source.name in self._sources:
                raise CorpusError(f"a document named {source.name!r} is already registered")
            self._sources[source.name] = source
            self._tokens[source.name] = self._next_token
            self._next_token += 1
            self._version += 1
        return source.name

    def discard(self, name: str) -> None:
        """Forget a document entirely: its source, resident and memoised state."""
        with self._lock:
            removed = self._sources.pop(name, None)
            self._resident.pop(name, None)
            self._load_locks.pop(name, None)
            token = self._tokens.pop(name, None)
            if removed is not None:
                self._version += 1
        # Outside the store lock: the cache has its own, and a same-name
        # re-registration gets a fresh token anyway, so no staleness window.
        if token is not None and self.answer_cache is not None:
            self.answer_cache.drop_owner(token)

    # ------------------------------------------------------------------ access
    def get(self, name: str) -> Document:
        """Return the materialised document, loading (or reloading) on demand.

        Raises
        ------
        CorpusError
            If no source named ``name`` is registered.
        """
        while True:
            with self._lock:
                source = self._sources.get(name)
                if source is None:
                    hint = (
                        "registered: " + ", ".join(sorted(self._sources))
                        if self._sources
                        else "the store is empty"
                    )
                    raise CorpusError(f"unknown document {name!r}; {hint}")
                document = self._resident.get(name)
                if document is not None:
                    self._resident.move_to_end(name)
                    self._hits += 1
                    return document
                # Captured together with the source, under one lock hold:
                # the token identifies exactly this registration, so a
                # concurrent discard + same-name re-add is detectable below.
                token = self._tokens.get(name)
                load_lock = self._load_locks.setdefault(name, threading.Lock())
            with load_lock:
                with self._lock:
                    # Re-validate: another thread may have loaded while we
                    # waited, or replaced the registration entirely (then
                    # retry against the new source instead of parsing a
                    # stale one).
                    if (
                        self._sources.get(name) is not source
                        or self._tokens.get(name) != token
                    ):
                        continue
                    document = self._resident.get(name)
                    if document is not None:
                        self._resident.move_to_end(name)
                        self._hits += 1
                        return document
                document = self._materialise(source, token)
                with self._lock:
                    if (
                        self._sources.get(name) is not source
                        or self._tokens.get(name) != token
                    ):
                        # Replaced mid-parse: drop the stale document (its
                        # answers, if any, sit under the retired token and
                        # were purged by discard) and load the new source.
                        continue
                    self._resident[name] = document
                    self._resident.move_to_end(name)
                    self._loads += 1
                    while (
                        self.max_resident is not None
                        and len(self._resident) > self.max_resident
                    ):
                        self._resident.popitem(last=False)
                        self._evictions += 1
                return document

    def _materialise(self, source: DocumentSource, token: Optional[int]) -> Document:
        """Build one document, preferring a columnar snapshot over the source.

        With a snapshot store configured, the source payload is digested
        first (re-digested on every load, so an edited file revalidates to
        a different address and can never be served a stale snapshot); a
        valid snapshot yields a memmap-backed tree with its packed axis
        relations pre-seeded, a miss parses as usual and writes the
        snapshot for the next cold start.  Either way the resulting
        document carries the store+digest pair so its answers spill to (and
        load from) disk.
        """
        snapshot = self.snapshot_store
        digest: Optional[str] = None
        tree: Optional[Tree] = None
        if snapshot is not None and source.kind != "tree":
            digest = snapshot.digest_source(*source.spec())
            if digest is not None:
                tree = snapshot.load_tree(
                    digest, matrix_cache_bytes=self.matrix_cache_bytes
                )
                with self._lock:
                    if tree is not None:
                        self._snapshot_hits += 1
                    else:
                        self._snapshot_misses += 1
        if tree is None and source.kind != "tree":
            with self._lock:
                self._parses += 1
        document = source.load(
            cache_answers=self.cache_answers,
            answer_cache=self.answer_cache,
            cache_owner=token,
            kernel=self.kernel,
            matrix_cache_bytes=self.matrix_cache_bytes,
            tree=tree,
            snapshot_store=snapshot if digest is not None else None,
            source_digest=digest,
        )
        if tree is None and digest is not None and snapshot is not None:
            snapshot.store_tree(document.tree, digest)
        return document

    def resolve(self, name_or_path: Union[str, Path]) -> Document:
        """Resolve a registered name, or register-and-load a filesystem path.

        This is the lookup :func:`repro.api.answer_batch` routes string items
        through: names win over paths, unknown strings that exist on disk are
        adopted as file sources (so repeated batches reuse the parse), and
        anything else is an error.  Adopted paths are registered under their
        full path string, so they can never collide with directory-registered
        stems (or with the same file spelled through a different path).
        """
        key = str(name_or_path)
        with self._lock:
            known = key in self._sources
        if known:
            return self.get(key)
        path = Path(key)
        if path.is_file():
            return self.get(self.add_file(path, name=key))
        raise CorpusError(f"{key!r} is neither a registered document nor an XML file")

    # -------------------------------------------------------------- inspection
    def names(self) -> tuple[str, ...]:
        """Registered document names, in registration order."""
        with self._lock:
            return tuple(self._sources)

    def resident_names(self) -> tuple[str, ...]:
        """Names currently materialised, least-recently-used first."""
        with self._lock:
            return tuple(self._resident)

    def source_spec(self, name: str) -> tuple[str, str]:
        """The picklable ``(kind, payload)`` spec of one source (for workers)."""
        with self._lock:
            source = self._sources.get(name)
        if source is None:
            raise CorpusError(f"unknown document {name!r}")
        return source.spec()

    def source_token(self, name: str) -> int:
        """A token unique to this *registration* of ``name``.

        Two registrations of the same name (discard + re-add) get different
        tokens.  The executor fingerprints shard membership with these, so a
        same-name source replacement is detected as a shard change even
        though the name list is identical; the answer cache keys entries by
        them for the same staleness guarantee.
        """
        with self._lock:
            token = self._tokens.get(name)
        if token is None:
            raise CorpusError(f"unknown document {name!r}")
        return token

    @property
    def stats(self) -> StoreStats:
        """A snapshot of the load/hit/eviction and cold-load counters."""
        with self._lock:
            return StoreStats(
                loads=self._loads,
                hits=self._hits,
                evictions=self._evictions,
                parse_count=self._parses,
                snapshot_hits=self._snapshot_hits,
                snapshot_misses=self._snapshot_misses,
            )

    def snapshot_stats(self) -> Optional[dict]:
        """The snapshot store's telemetry, or ``None`` when none is configured.

        Combines the :class:`repro.snapshot.SnapshotStats` counters with
        the current on-disk footprint and artefact counts — the byte-level
        half of the hit/miss counters in :attr:`stats`.
        """
        if self.snapshot_store is None:
            return None
        payload = self.snapshot_store.stats.to_dict()
        payload["total_bytes"] = self.snapshot_store.total_bytes()
        payload.update(self.snapshot_store.file_counts())
        payload["max_bytes"] = self.snapshot_store.max_bytes
        return payload

    def matrix_cache_stats(self):
        """Aggregate matrix-cache counters over the resident documents.

        Sums the per-tree :class:`repro.trees.tree.MatrixCacheStats` of every
        materialised document — the Theorem 2 relation/row cache telemetry,
        surfaced next to the AnswerCache stats by ``CorpusReport`` and the
        serving layer's ``ServerStats``.  Evicted (non-resident) documents
        contribute nothing: their matrix caches died with the tree.
        """
        from repro.trees.tree import MatrixCacheStats

        with self._lock:
            documents = list(self._resident.values())
        totals = MatrixCacheStats()
        budgets: list = []
        for document in documents:
            stats = document.tree.matrix_cache().stats
            budgets.append(stats.max_bytes)
            totals = MatrixCacheStats(
                hits=totals.hits + stats.hits,
                misses=totals.misses + stats.misses,
                insertions=totals.insertions + stats.insertions,
                evictions=totals.evictions + stats.evictions,
                current_bytes=totals.current_bytes + stats.current_bytes,
                entries=totals.entries + stats.entries,
            )
        max_bytes = (
            sum(budgets) if budgets and all(b is not None for b in budgets) else None
        )
        return MatrixCacheStats(
            hits=totals.hits,
            misses=totals.misses,
            insertions=totals.insertions,
            evictions=totals.evictions,
            current_bytes=totals.current_bytes,
            max_bytes=max_bytes,
            entries=totals.entries,
        )

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every source registration or discard.

        The executor's process strategy partitions the corpus once and keeps
        worker caches across runs; it compares this version to detect that
        the registered sources changed (including same-name replacement) and
        rebuild its shard pools.
        """
        with self._lock:
            return self._version

    def clear_resident(self) -> None:
        """Drop every materialised document (sources stay registered)."""
        with self._lock:
            self._resident.clear()

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._sources

    def __len__(self) -> int:
        with self._lock:
            return len(self._sources)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DocumentStore(documents={len(self)}, "
            f"resident={len(self._resident)}, max_resident={self.max_resident})"
        )
