"""Parallel corpus query execution with streaming results.

The :class:`CorpusExecutor` runs one or many compiled queries across the
documents of a :class:`repro.corpus.store.DocumentStore` under one of three
strategies:

``"serial"``
    One pass over the documents in the calling thread.  Fully lazy: a
    document is materialised only when the consumer pulls its results, so a
    bounded store never holds more than its cap plus one.

``"threads"``
    A ``ThreadPoolExecutor`` sharing the store (which is thread-safe).  Most
    useful when query evaluation spends its time in numpy — the boolean
    matrix products release the GIL.

``"processes"``
    Documents are sharded across *dedicated* single-worker process pools —
    one ``ProcessPoolExecutor(max_workers=1)`` per shard — rather than one
    shared pool.  The pinning is the point: each worker owns a fixed
    partition of the corpus and keeps its own LRU document cache, so across
    repeated batches a shard's oracle matrices are built exactly once in
    exactly one process.  (A shared pool routes tasks to arbitrary workers,
    which turns every per-worker cache into an accidental thrash.)  Sources
    ship as picklable ``(kind, payload)`` specs and answers ship back as
    plain frozensets; the dense oracle matrices never cross a process
    boundary because they are far cheaper to rebuild than to pickle.

Results stream back as :class:`CorpusResult` values — an iterator, not a
list, so aggregation, early exit and pipelining all work without holding a
corpus worth of answer sets.  With ``ordered=True`` (the default) results
arrive in deterministic store order regardless of completion order; with
``ordered=False`` they arrive as soon as any worker finishes.

Fault tolerance
---------------
The processes strategy is *supervised*: a worker death
(``BrokenProcessPool`` — OOM kill, native segfault, pickling explosion)
no longer aborts the stream.  The shard's supervisor attributes the crash
to the document that was being evaluated, respawns the pool with
exponential backoff + jitter under a per-shard restart budget
(``max_worker_restarts``), re-dispatches the in-flight documents, and
quarantines a document that kills its worker twice
(:class:`repro.errors.DocumentQuarantinedError` appears as a typed error
record in the stream).  A shard that exhausts its restart budget trips a
circuit breaker and falls back to in-process serial evaluation — degraded,
but available.  Transient per-document failures retry up to ``max_retries``
times with ``retry_backoff`` exponential delays; a *final* failure is
dispatched per ``on_error``: ``"raise"`` (default), ``"record"`` (typed
error records, partial-results semantics) or ``"skip"``.  Every recovery
action increments a labelled metric (``repro_worker_restarts_total``,
``repro_retries_total``, ``repro_quarantined_total``) and the named fault
points of :mod:`repro.faults` make all of it deterministically testable.
"""

from __future__ import annotations

import os
import random
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, replace as dataclass_replace
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro import faults
from repro._config import UNSET as _UNSET
from repro.core.engine import QueryReport
from repro.api.document import BatchItem, Document, iter_batch
from repro.api.query import Query, compile_query
from repro.api.registry import DEFAULT_ENGINE
from repro.corpus.store import CorpusError, DocumentStore, StoreStats
from repro.errors import DocumentQuarantinedError
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry

STRATEGIES = ("serial", "threads", "processes")

#: ``on_error`` dispositions for a document whose failure is final.
ON_ERROR_MODES = ("raise", "record", "skip")

#: How many worker deaths a single document may cause before it is
#: quarantined for the life of the executor.
QUARANTINE_AFTER = 2

#: Recovery metric families (labels in parentheses): worker-pool respawns
#: (``strategy``), per-document retry attempts (``reason`` = exception type
#: name), quarantined documents, and shards degraded to in-process serial
#: evaluation.
WORKER_RESTARTS_COUNTER = "repro_worker_restarts_total"
RETRIES_COUNTER = "repro_retries_total"
QUARANTINED_COUNTER = "repro_quarantined_total"
DEGRADED_GAUGE = "repro_degraded_shards"
_RESTARTS_HELP = "Shard worker pools respawned after a worker death"
_RETRIES_HELP = "Per-document retry attempts after a transient failure"
_QUARANTINED_HELP = "Documents quarantined after repeatedly killing workers"
_DEGRADED_HELP = "Shards degraded to in-process serial evaluation"

#: Histogram of per-(document, query) evaluation seconds, labelled by
#: ``(engine, strategy)``.  One family name across parent and shard workers
#: so label-identical worker series merge bucket-by-bucket into the
#: parent's (see :meth:`CorpusExecutor.metrics`).
EVAL_HISTOGRAM = "repro_eval_seconds"
_EVAL_HELP = "Per (document, query) evaluation time in seconds"

#: Counter families aggregated from per-query ``QueryReport.cost`` blocks
#: (see :meth:`repro.api.Document.report`), labelled by ``(engine,
#: strategy)``: cost-block field -> (family name, HELP text).
COST_COUNTERS = {
    "compose_ops": ("repro_compose_ops_total", "PPLbin compose operations"),
    "row_union_ops": ("repro_row_union_ops_total", "PPLbin row-union operations"),
    "relations_built": ("repro_relations_built_total", "PPLbin relations materialised"),
    "matrix_bytes": (
        "repro_matrix_bytes_total",
        "Matrix-cache bytes left resident by query evaluation",
    ),
    "matrix_cache_hits": ("repro_matrix_cache_hits_total", "Matrix-cache hits"),
    "matrix_cache_misses": ("repro_matrix_cache_misses_total", "Matrix-cache misses"),
    "answer_cache_hits": ("repro_answer_cache_hits_total", "Answer-cache hits"),
    "answer_cache_misses": ("repro_answer_cache_misses_total", "Answer-cache misses"),
    "snapshot_hits": ("repro_snapshot_answer_hits_total", "Snapshot answer-set hits"),
}


def observe_cost(
    registry: MetricsRegistry, cost: Optional[dict], *, engine: str, strategy: str
) -> None:
    """Fold one query's resource-accounting block into labelled counters."""
    if not cost:
        return
    labels = {"engine": engine, "strategy": strategy}
    for field, (family, help_text) in COST_COUNTERS.items():
        value = cost.get(field)
        if value:
            registry.counter(family, help_text, labels=labels).inc(value)


def _query_spec(query: Query) -> tuple[str, tuple[str, ...]]:
    """A picklable ``(text, variables)`` spec for shipping to shard workers.

    Reuses the original expression text when the query was compiled from a
    string (the common case) instead of re-walking the AST with
    ``unparse()`` on every per-document submission.
    """
    text = query.text if query.text is not None else query.unparse()
    return (text, query.variables)


@dataclass(frozen=True)
class CorpusResult:
    """One document's answer to one query.

    Iterating the result yields ``(doc_name, report)``, so the streaming
    iterator can be consumed as advertised::

        for doc_name, report in executor.run(query):
            ...

    while the full answer set, timing and query text stay available as
    attributes.

    Under ``on_error="record"`` (and always for quarantined documents) a
    document whose failure is final yields *error records* instead of
    aborting the stream: one record per query with ``error``/``error_kind``
    set, an empty answer set and ``report=None``.  Check :attr:`ok` before
    touching the report on streams that opted into partial results.
    """

    doc_name: str
    report: Optional[QueryReport]
    query: str
    variables: tuple[str, ...]
    answers: frozenset[tuple[int, ...]]
    seconds: float
    error: Optional[str] = None
    error_kind: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether this is a real answer (False: typed error record)."""
        return self.error is None

    def __iter__(self):
        yield self.doc_name
        yield self.report


# --------------------------------------------------------------- worker side
#
# Module-level state and functions for the process strategy.  Each shard
# worker process initialises `_WORKER` once with its partition's source
# specs, rebuilt into a local :class:`DocumentStore` — the same tested LRU
# residency code that runs in the parent — plus a compiled-query cache.
_WORKER: dict = {}


def _worker_initialise(
    specs: dict[str, tuple[str, str]],
    max_resident: Optional[int],
    answer_cache_bytes: Optional[int] = None,
    cache_answers: bool = True,
    store_config: Optional[dict] = None,
    trace: bool = False,
    trace_sample: float = 0.0,
    faults_payload=None,
    worker_epoch: int = 0,
) -> None:
    # ``store_config`` carries the *resolved* kernel/matrix-budget settings
    # from the parent.  This is the config-precedence fix: workers used to
    # re-read ``REPRO_KERNEL`` on spawn, so an explicit ``kernel=`` argument
    # lost to the environment inside subprocesses.  The parent now resolves
    # precedence once and ships the outcome; the worker never consults the
    # environment for a knob the caller pinned.
    store = DocumentStore(
        max_resident=max_resident,
        cache_answers=cache_answers,
        answer_cache_bytes=answer_cache_bytes,
        **(store_config or {}),
    )
    for name, (kind, payload) in specs.items():
        if kind == "xml":
            store.add_xml(name, payload)
        else:
            store.add_file(payload, name=name)
    _WORKER["store"] = store
    _WORKER["queries"] = {}
    _WORKER["metrics"] = MetricsRegistry()
    # A forked worker inherits the parent thread's span stack (the dispatch
    # span is open while pools spawn); start from a clean slate.
    _trace.reset_thread()
    if trace:
        # Tracing was on in the parent when this shard spawned; the flag
        # ships explicitly because set_tracing() state (unlike REPRO_TRACE)
        # does not survive a process boundary.
        _trace.set_tracing(True)
    if trace_sample:
        # Sampling replicates the same way, and separately: a sampled-only
        # parent must produce sampled-only workers, not fully traced ones.
        _trace.set_trace_sample(trace_sample)
    # The fault plan ships explicitly (never inherited): each worker
    # incarnation starts with fresh firing counters, flagged as sacrificial
    # (worker_crash exits the process) at its shard's respawn epoch.
    faults.install_payload(faults_payload, epoch=worker_epoch)


def _worker_query(text: str, variables: tuple[str, ...]) -> Query:
    key = (text, variables)
    query = _WORKER["queries"].get(key)
    if query is None:
        query = compile_query(text, variables, require_ppl=False)
        _WORKER["queries"][key] = query
    return query


def _evaluate_document(
    document: Document,
    queries: Sequence[Query],
    engine: str,
    registry: MetricsRegistry,
    strategy: str,
    *,
    site: str,
    key: str,
) -> list[tuple[str, tuple[str, ...], frozenset, QueryReport, float]]:
    """Answer every query on one document, wherever the document lives.

    The one evaluation loop shared by the shard workers, the serial and
    threads strategies, and the degraded in-parent fallback — identical
    code on every path is what makes "byte-identical answers across
    strategies" a structural property rather than a test assertion.  The
    :mod:`repro.faults` points bracket it: ``worker_crash``/``slow_query``
    fire before the first evaluation (where an arriving dispatch would
    die), ``pickle_error`` after the last (where result marshalling would).
    """
    faults.trip("worker_crash", key=key, site=site)
    faults.trip("slow_query", key=key, site=site)
    histogram = registry.histogram(
        EVAL_HISTOGRAM, _EVAL_HELP, labels={"engine": engine, "strategy": strategy}
    )
    results = []
    for query in queries:
        if _trace.enabled():
            _trace.take_last_trace()
        meter = document.cost_meter()
        started = time.perf_counter()
        answers = document.answer(query, engine=engine)
        elapsed = time.perf_counter() - started
        cost = meter.finish(elapsed)
        histogram.observe(elapsed)
        report = document.report(query, engine=engine, answers=answers)
        changes: dict = {"cost": cost}
        if report.trace is None:
            trace_tree = _trace.take_last_trace()
            if trace_tree is not None:
                changes["trace"] = trace_tree
        report = dataclass_replace(report, **changes)
        observe_cost(registry, cost, engine=engine, strategy=strategy)
        text, variables = _query_spec(query)
        results.append((text, variables, answers, report, elapsed))
    faults.trip("pickle_error", key=key, site=site)
    return results


def _worker_answer(
    name: str, query_specs: Sequence[tuple[str, tuple[str, ...]]], engine: str
) -> list[tuple[str, tuple[str, ...], frozenset, QueryReport, float]]:
    """Answer every query on one document inside the shard worker."""
    document = _WORKER["store"].get(name)
    queries = [_worker_query(text, variables) for text, variables in query_specs]
    return _evaluate_document(
        document,
        queries,
        engine,
        _WORKER["metrics"],
        "processes",
        site="worker",
        key=name,
    )


def _worker_stats() -> tuple[int, int, int, int, int, int]:
    """The shard worker's store counters (residency plus parse/snapshot)."""
    stats = _WORKER["store"].stats
    return (
        stats.loads,
        stats.hits,
        stats.evictions,
        stats.parse_count,
        stats.snapshot_hits,
        stats.snapshot_misses,
    )


def _worker_cache_stats() -> Optional[dict]:
    """The shard worker's answer-cache counters, as a plain dict (or None)."""
    cache = _WORKER["store"].answer_cache
    return cache.stats.to_dict() if cache is not None else None


def _worker_snapshot_stats() -> Optional[dict]:
    """The shard worker's snapshot-store counters, as a plain dict (or None)."""
    return _WORKER["store"].snapshot_stats()


def _worker_metrics() -> Optional[dict]:
    """The shard worker's metrics registry, as a plain mergeable dict."""
    registry = _WORKER.get("metrics")
    return registry.to_dict() if registry is not None else None


# --------------------------------------------------------------- shard pools
class _Job:
    """One in-flight document dispatch, tracked across worker incarnations."""

    __slots__ = ("seq", "name", "query_specs", "engine", "outer", "inner", "attempts")

    def __init__(self, name: str, query_specs, engine: str) -> None:
        self.seq = 0
        self.name = name
        self.query_specs = query_specs
        self.engine = engine
        self.outer: Future = Future()
        self.inner: Optional[Future] = None
        self.attempts = 0


def _resolve_job(outer: Future, *, result=None, error: Optional[BaseException] = None) -> None:
    """Resolve a job's outer future, losing races with cancellation cleanly."""
    if not outer.set_running_or_notify_cancel():
        return
    if error is not None:
        outer.set_exception(error)
    else:
        outer.set_result(result)


class _ShardPool:
    """A supervised single-worker process pool owning a fixed partition.

    ``submit`` returns a long-lived *outer* future decoupled from any one
    ``ProcessPoolExecutor`` future: when the worker dies, every pending
    job's inner future breaks with ``BrokenProcessPool``, and the
    supervisor thread — after attributing the crash to the earliest
    submitted (i.e. running) job — respawns the pool under the restart
    budget and re-submits the survivors against the new worker, the outer
    futures none the wiser.  Ordinary (picklable) failures consume the
    per-document retry budget with exponential backoff instead.  Once the
    restart budget is spent the shard trips its circuit breaker
    (``degraded``) and every job runs serially in the parent process.
    """

    def __init__(
        self,
        executor: "CorpusExecutor",
        shard_index: int,
        doc_names: Sequence[str],
        specs: dict[str, tuple[str, str]],
        max_resident: Optional[int],
        answer_cache_bytes: Optional[int] = None,
        cache_answers: bool = True,
        store_config: Optional[dict] = None,
    ) -> None:
        self.executor = executor
        self.shard_index = shard_index
        self.doc_names = tuple(doc_names)
        self._spawn_args = (
            specs, max_resident, answer_cache_bytes, cache_answers, store_config,
        )
        #: Worker incarnation number, shipped to :func:`faults.mark_worker`
        #: so seeded schedules can target "the first worker only".
        self.epoch = 0
        self.restarts = 0
        self.degraded = False
        self._closed = False
        # Reentrant: ``add_done_callback`` on an already-done future runs
        # the callback inline, which would deadlock a plain lock.
        self._lock = threading.RLock()
        self._seq = 0
        self._jobs: dict[int, _Job] = {}
        self._dead: dict[int, _Job] = {}
        self._recovering = False
        self.pool = self._spawn()

    def _spawn(self) -> ProcessPoolExecutor:
        specs, max_resident, answer_cache_bytes, cache_answers, store_config = (
            self._spawn_args
        )
        return ProcessPoolExecutor(
            max_workers=1,
            initializer=_worker_initialise,
            # Tracing state is captured at spawn: pools created while the
            # parent traces (or samples) produce matching workers — fresh
            # spawns after set_tracing/set_trace_sample won't retro-fit
            # already-running shards.  The two knobs ship separately so a
            # sampled-only parent never produces fully traced workers.
            initargs=(specs, max_resident, answer_cache_bytes, cache_answers,
                      store_config, _trace.tracing_enabled(), _trace.sample_rate(),
                      faults.payload(), self.epoch),
        )

    # ------------------------------------------------------------- submission
    def submit(self, name: str, query_specs, engine: str) -> Future:
        job = _Job(name, query_specs, engine)
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot schedule new futures after shutdown")
            self._seq += 1
            job.seq = self._seq
            self._jobs[job.seq] = job

        def _forward_cancel(done: Future, job: _Job = job) -> None:
            # Cancelling the outer future should pull the work out of the
            # shard queue too, not leave the worker evaluating documents
            # for an aborted submission.
            if done.cancelled():
                with self._lock:
                    self._jobs.pop(job.seq, None)
                    inner = job.inner
                if inner is not None:
                    inner.cancel()

        job.outer.add_done_callback(_forward_cancel)
        self._submit_inner(job)
        return job.outer

    def _submit_inner(self, job: _Job) -> None:
        """(Re-)dispatch one job to the current worker (or degraded path)."""
        with self._lock:
            if self._closed:
                self._jobs.pop(job.seq, None)
                job.outer.cancel()
                return
            if job.outer.cancelled() or job.seq not in self._jobs:
                return
            if self.degraded:
                degraded = True
            else:
                degraded = False
                try:
                    inner = self.pool.submit(
                        _worker_answer, job.name, job.query_specs, job.engine
                    )
                except BrokenExecutor:
                    # Pool already broken (burst of deaths): park the job
                    # for the supervisor round in flight.
                    self._mark_dead_locked(job)
                    return
                job.inner = inner
                inner.add_done_callback(
                    lambda finished, job=job: self._on_inner_done(job, finished)
                )
        if degraded:
            self._submit_degraded(job)

    def _on_inner_done(self, job: _Job, inner: Future) -> None:
        if inner.cancelled():
            with self._lock:
                self._jobs.pop(job.seq, None)
            job.outer.cancel()
            return
        error = inner.exception()
        if error is None:
            with self._lock:
                self._jobs.pop(job.seq, None)
            _resolve_job(job.outer, result=inner.result())
            return
        if isinstance(error, BrokenExecutor):
            with self._lock:
                if self._closed:
                    self._jobs.pop(job.seq, None)
                    job.outer.cancel()
                    return
                self._mark_dead_locked(job)
            return
        # Ordinary failure: the worker survived, the document did not.
        job.attempts += 1
        if job.attempts <= self.executor.max_retries:
            self.executor._record_retry(type(error).__name__)
            delay = self.executor.retry_backoff * (2 ** (job.attempts - 1))
            timer = threading.Timer(delay, self._submit_inner, args=(job,))
            timer.daemon = True
            timer.start()
            return
        with self._lock:
            self._jobs.pop(job.seq, None)
        _resolve_job(job.outer, error=error)

    def _mark_dead_locked(self, job: _Job) -> None:
        """Park a crash-orphaned job and ensure one supervisor is running."""
        self._dead[job.seq] = job
        if not self._recovering:
            self._recovering = True
            threading.Thread(
                target=self._recover,
                name=f"shard-{self.shard_index}-supervisor",
                daemon=True,
            ).start()

    # ------------------------------------------------------------- supervision
    def _recover(self) -> None:
        """Supervisor loop: backoff, respawn, re-dispatch, quarantine."""
        executor = self.executor
        while True:
            with self._lock:
                if not self._dead:
                    self._recovering = False
                    return
                # The earliest submitted pending job is the one the
                # single worker was evaluating when it died.
                culprit_seq = min(self._dead)
            detected = time.perf_counter()
            # Exponential backoff with jitter before touching the pool; the
            # sleep also lets the burst of broken-future callbacks land so
            # one respawn covers all of them.
            delay = executor.restart_backoff * (2 ** min(self.restarts, 6))
            delay = min(delay + random.uniform(0.0, delay / 2.0), 5.0)
            time.sleep(delay)
            with self._lock:
                if self._closed:
                    dead = list(self._dead.values())
                    self._dead.clear()
                    self._recovering = False
                    for job in dead:
                        self._jobs.pop(job.seq, None)
                        job.outer.cancel()
                    return
                dead = [self._dead[seq] for seq in sorted(self._dead)]
                self._dead.clear()
            culprit = dead[0] if dead and dead[0].seq == culprit_seq else None
            redispatch = list(dead)
            if culprit is not None:
                crashes = executor._note_crash(culprit.name)
                if crashes >= QUARANTINE_AFTER:
                    executor._quarantine(culprit.name, crashes)
                    redispatch.remove(culprit)
                    with self._lock:
                        self._jobs.pop(culprit.seq, None)
                    _resolve_job(
                        culprit.outer,
                        error=DocumentQuarantinedError(culprit.name, crashes),
                    )
            if self.restarts >= executor.max_worker_restarts:
                self._trip_breaker(redispatch)
                continue
            with self._lock:
                old = self.pool
                self.epoch += 1
                self.pool = self._spawn()
            old.shutdown(wait=False, cancel_futures=True)
            self.restarts += 1
            executor._record_restart(
                self.shard_index,
                restart=self.restarts,
                detected=detected,
                resumed=time.perf_counter(),
                culprit=culprit.name if culprit is not None else None,
            )
            for job in redispatch:
                self._submit_inner(job)

    def _trip_breaker(self, jobs: Sequence[_Job]) -> None:
        """Degrade the shard: evaluate in-parent instead of respawning."""
        with self._lock:
            first = not self.degraded
            self.degraded = True
            pool = self.pool
        if first:
            self.executor._record_degraded(self.shard_index)
            pool.shutdown(wait=False, cancel_futures=True)
        for job in jobs:
            self._submit_degraded(job)

    def _submit_degraded(self, job: _Job) -> None:
        inner = self.executor._dispatch().submit(
            self.executor._evaluate_in_parent, job.name, job.query_specs, job.engine
        )
        job.inner = inner

        def _finish(finished: Future, job: _Job = job) -> None:
            with self._lock:
                self._jobs.pop(job.seq, None)
            if finished.cancelled():
                job.outer.cancel()
                return
            error = finished.exception()
            if error is not None:
                _resolve_job(job.outer, error=error)
            else:
                _resolve_job(job.outer, result=finished.result())

        inner.add_done_callback(_finish)

    # --------------------------------------------------------------- teardown
    def shutdown(self) -> None:
        with self._lock:
            self._closed = True
            jobs = list(self._jobs.values())
            self._jobs.clear()
            self._dead.clear()
            pool = self.pool
        pool.shutdown(wait=True, cancel_futures=True)
        for job in jobs:
            job.outer.cancel()


# ----------------------------------------------------------------- executor
class CorpusExecutor:
    """Run compiled queries across a document store, streaming the results.

    Parameters
    ----------
    store:
        The corpus.  For ``"processes"`` every registered document must have
        a picklable source spec (always true: trees are serialised to XML).
    strategy:
        ``"serial"`` (default), ``"threads"`` or ``"processes"``.
    max_workers:
        Thread-pool width, or the number of shards for ``"processes"``.
        An explicit value is honoured exactly (capped at the corpus size);
        the default is ``os.cpu_count()``, raised to at least 2 shards so
        sharding is observable even on one-core machines.
    engine:
        Default registry engine for :meth:`run` (overridable per call).
    max_retries / retry_backoff / on_error:
        Per-document retry budget, exponential-backoff base and final-
        failure disposition (see the module docstring's fault-tolerance
        section).  ``None`` means the built-in default (0 / 0.05 /
        ``"raise"``), so the session layer can pass resolved policy values
        straight through.
    max_worker_restarts / restart_backoff:
        Per-shard worker-respawn budget and backoff base for the
        supervised processes strategy (defaults 3 / 0.1).

    The executor is a context manager; ``"processes"`` keeps its shard pools
    (and therefore the per-worker document caches) alive across :meth:`run`
    calls until :meth:`close` or context exit.
    """

    def __init__(
        self,
        store: DocumentStore,
        *,
        strategy: str = "serial",
        max_workers: Optional[int] = None,
        engine: str = DEFAULT_ENGINE,
        kernel=None,
        max_retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
        on_error: Optional[str] = None,
        max_worker_restarts: Optional[int] = None,
        restart_backoff: Optional[float] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise CorpusError(
                f"unknown strategy {strategy!r}; expected one of {', '.join(STRATEGIES)}"
            )
        on_error = on_error or "raise"
        if on_error not in ON_ERROR_MODES:
            raise CorpusError(
                f"unknown on_error mode {on_error!r}; "
                f"expected one of {', '.join(ON_ERROR_MODES)}"
            )
        self.store = store
        self.strategy = strategy
        self.max_workers = max_workers
        self.engine = engine
        #: Kernel pinned for shard workers (name/instance or None).  Falls
        #: back to the store's pinned kernel; ``None`` leaves workers on the
        #: process default (which honours ``REPRO_KERNEL``).  For the
        #: serial/threads strategies the store's own kernel governs, since
        #: documents materialise in the parent store.
        self.kernel = kernel if kernel is not None else store.kernel
        #: Shard pools, created lazily per shard on first submit (None =
        #: partition slot whose pool has not been needed yet).
        self._pools: Optional[list[Optional[_ShardPool]]] = None
        self._shard_names: list[tuple[str, ...]] = []
        #: Per-shard membership fingerprints: tuples of (name, source token),
        #: so a same-name source replacement registers as a shard change.
        self._shard_tokens: list[tuple[tuple[str, int], ...]] = []
        self._shard_of: dict[str, int] = {}
        self._partition_version: Optional[int] = None
        #: Targeted-refresh telemetry: how many live pools each repartition
        #: kept versus shut down (see :meth:`_ensure_partition`).
        self.pools_kept = 0
        self.pools_rebuilt = 0
        #: Lazy thread pool backing :meth:`submit_document` for the serial
        #: and threads strategies (processes submit straight to shard pools).
        self._dispatch_pool: Optional[ThreadPoolExecutor] = None
        #: Serialises pool lifecycle (partitioning, spawning, shutdown):
        #: ``submit_document`` may be called from several threads at once
        #: (the server offloads it from the event loop).
        self._pool_lock = threading.RLock()
        #: Parent-side metrics: per-(document, query) evaluation histograms
        #: and cost counters for the serial/threads strategies, labelled by
        #: (engine, strategy).  The processes strategy observes inside shard
        #: workers; :meth:`metrics` merges both.
        self.metrics_registry = MetricsRegistry()
        # ------------------------------------------------- fault tolerance
        self.max_retries = int(max_retries) if max_retries else 0
        self.retry_backoff = 0.05 if retry_backoff is None else float(retry_backoff)
        self.on_error = on_error
        self.max_worker_restarts = (
            3 if max_worker_restarts is None else int(max_worker_restarts)
        )
        self.restart_backoff = (
            0.1 if restart_backoff is None else float(restart_backoff)
        )
        self._fault_lock = threading.Lock()
        #: Worker deaths attributed per document (supervised processes).
        self._crash_counts: dict[str, int] = {}
        #: Documents quarantined after :data:`QUARANTINE_AFTER` crashes.
        self.quarantined: set[str] = set()
        self._degraded_shards: set[int] = set()
        self._restart_total = 0
        self._retry_total = 0
        #: Supervisor recovery log: perf_counter stamps bracketing each
        #: respawn, for stats and the E15 recovery-latency gate.
        self._recovery_log: list[dict] = []
        # Eager family registration so exposition shows explicit zeros
        # before the first incident.
        self._restarts_counter = self.metrics_registry.counter(
            WORKER_RESTARTS_COUNTER, _RESTARTS_HELP, labels={"strategy": strategy}
        )
        self._quarantined_counter = self.metrics_registry.counter(
            QUARANTINED_COUNTER, _QUARANTINED_HELP
        )
        self._degraded_gauge = self.metrics_registry.gauge(
            DEGRADED_GAUGE, _DEGRADED_HELP
        )
        #: Parent-side compiled-query cache for the degraded fallback path
        #: (specs arrive pre-serialised from the shard dispatch).
        self._spec_queries: dict[tuple[str, tuple[str, ...]], Query] = {}

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down any worker pools (dropping per-worker caches)."""
        with self._pool_lock:
            if self._pools is not None:
                for pool in self._pools:
                    if pool is not None:
                        pool.shutdown()
                self._pools = None
                self._shard_names = []
                self._shard_tokens = []
                self._shard_of = {}
                self._partition_version = None
            if self._dispatch_pool is not None:
                self._dispatch_pool.shutdown(wait=True, cancel_futures=True)
                self._dispatch_pool = None

    def __enter__(self) -> "CorpusExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------- public
    def run(
        self,
        queries: Union[BatchItem, Iterable[BatchItem]],
        documents: Optional[Sequence[str]] = None,
        *,
        engine: Optional[str] = None,
        ordered: bool = True,
    ) -> Iterator[CorpusResult]:
        """Stream ``CorpusResult``s for every (document, query) pair.

        Parameters
        ----------
        queries:
            One query or an iterable of queries; each is a compiled
            :class:`Query`, an expression (text or AST), or an
            ``(expression, variables)`` pair.
        documents:
            Names to run on (default: every document, in store order).
        engine:
            Registry engine override for this call.
        ordered:
            With ``True`` results arrive in deterministic (document, query)
            order; with ``False`` in completion order.
        """
        engine_name = engine if engine is not None else self.engine
        compiled = self._normalise_queries(queries)
        names = list(documents) if documents is not None else list(self.store.names())
        for name in names:
            if name not in self.store:
                raise CorpusError(f"unknown document {name!r}")
        if self.strategy == "serial":
            return self._run_serial(names, compiled, engine_name)
        if self.strategy == "threads":
            return self._run_threads(names, compiled, engine_name, ordered)
        return self._run_processes(names, compiled, engine_name, ordered)

    def submit_document(
        self,
        name: str,
        queries: Union[BatchItem, Iterable[BatchItem]],
        *,
        engine: Optional[str] = None,
    ) -> "Future[list[CorpusResult]]":
        """Submit one document's work and return a future, without blocking.

        This is the submission hook the async serving layer
        (:mod:`repro.serve`) multiplexes on: each call schedules *one*
        document against the given queries and immediately returns a
        ``concurrent.futures.Future`` resolving to that document's
        :class:`CorpusResult` list, so concurrently arriving requests
        interleave at document granularity instead of queueing behind whole
        batches.

        Under ``"processes"`` the work goes straight to the document's shard
        pool (per-worker caches apply as in :meth:`run`); under ``"serial"``
        and ``"threads"`` it runs on an internal dispatch thread pool of
        width 1 or ``max_workers`` respectively.
        """
        engine_name = engine if engine is not None else self.engine
        compiled = self._normalise_queries(queries)
        if name not in self.store:
            raise CorpusError(f"unknown document {name!r}")
        if self.strategy == "processes":
            query_specs = [_query_spec(query) for query in compiled]
            # One lock hold across partition check, shard lookup and the
            # pool submit: a concurrent targeted repartition (another
            # thread's submit after a store change) must not shut the
            # chosen pool down between lookup and submit.
            with self._pool_lock:
                self._ensure_partition()
                shard_index = self._shard_of.get(name)
                if shard_index is None:
                    # Discarded between the membership check and the lock.
                    raise CorpusError(f"unknown document {name!r}")
                if name in self.quarantined:
                    inner = self._quarantined_future(name)
                else:
                    with _trace.span(
                        "shard.dispatch", document=name, shard=shard_index
                    ):
                        inner = self._shard_pool(shard_index).submit(
                            name, query_specs, engine_name
                        )
            outer: "Future[list[CorpusResult]]" = Future()

            def _forward_cancel(done: Future) -> None:
                # Cancelling the outer future (asyncio.wrap_future does so
                # when the awaiting task is cancelled) should pull the work
                # out of the shard queue too, not leave the worker
                # evaluating documents for an aborted submission.
                if done.cancelled():
                    inner.cancel()

            def _chain(finished: Future) -> None:
                if finished.cancelled():
                    outer.cancel()
                    return
                # Atomically claim the outer future: False means it was
                # cancelled meanwhile, and claiming it stops a concurrent
                # cancel from landing between the check and set_result.
                if not outer.set_running_or_notify_cancel():
                    return
                error = finished.exception()
                if error is not None:
                    records = self._document_error_records(
                        name, query_specs, engine_name, error
                    )
                    if records is None:
                        outer.set_exception(error)
                    else:
                        outer.set_result(records)
                    return
                outer.set_result(
                    [
                        CorpusResult(
                            doc_name=name,
                            report=report,
                            query=text,
                            variables=variables,
                            answers=answers,
                            seconds=elapsed,
                        )
                        for text, variables, answers, report, elapsed in finished.result()
                    ]
                )

            outer.add_done_callback(_forward_cancel)
            inner.add_done_callback(_chain)
            return outer
        return self._dispatch().submit(
            lambda: list(
                self._answer_document(name, self.store.get(name), compiled, engine_name)
            )
        )

    def _dispatch(self) -> ThreadPoolExecutor:
        """The internal thread pool behind ``submit_document`` (lazy)."""
        with self._pool_lock:
            if self._dispatch_pool is None:
                if self.strategy == "serial":
                    width = 1
                else:
                    width = self.max_workers or min(8, (os.cpu_count() or 1) + 2)
                self._dispatch_pool = ThreadPoolExecutor(
                    max_workers=width, thread_name_prefix="corpus-dispatch"
                )
            return self._dispatch_pool

    # ------------------------------------------------------- fault tolerance
    def _record_retry(self, reason: str) -> None:
        self.metrics_registry.counter(
            RETRIES_COUNTER, _RETRIES_HELP, labels={"reason": reason}
        ).inc()
        with self._fault_lock:
            self._retry_total += 1

    def _note_crash(self, name: str) -> int:
        """Attribute one worker death to ``name``; returns its crash count."""
        with self._fault_lock:
            self._crash_counts[name] = self._crash_counts.get(name, 0) + 1
            return self._crash_counts[name]

    def _quarantine(self, name: str, crashes: int) -> None:
        with self._fault_lock:
            if name in self.quarantined:
                return
            self.quarantined.add(name)
        self._quarantined_counter.inc()
        _trace.record_span(
            "pool.quarantine",
            time.perf_counter(),
            time.perf_counter(),
            document=name,
            crashes=crashes,
        )

    def _record_restart(
        self,
        shard_index: int,
        *,
        restart: int,
        detected: float,
        resumed: float,
        culprit: Optional[str],
    ) -> None:
        self._restarts_counter.inc()
        with self._fault_lock:
            self._restart_total += 1
            self._recovery_log.append(
                {
                    "shard": shard_index,
                    "restart": restart,
                    "detected": detected,
                    "resumed": resumed,
                    "backoff_seconds": resumed - detected,
                    "culprit": culprit,
                }
            )
        _trace.record_span(
            "pool.restart",
            detected,
            resumed,
            shard=shard_index,
            restart=restart,
            culprit=culprit or "",
        )

    def _record_degraded(self, shard_index: int) -> None:
        with self._fault_lock:
            self._degraded_shards.add(shard_index)
            count = len(self._degraded_shards)
        self._degraded_gauge.set(count)
        _trace.record_span(
            "pool.degraded",
            time.perf_counter(),
            time.perf_counter(),
            shard=shard_index,
        )

    @property
    def degraded_shard_count(self) -> int:
        """Shards whose circuit breaker tripped (serving serially in-parent)."""
        with self._fault_lock:
            return len(self._degraded_shards)

    def fault_stats(self) -> dict:
        """Supervision counters: restarts, retries, quarantine, degradation."""
        with self._fault_lock:
            return {
                "worker_restarts": self._restart_total,
                "retries": self._retry_total,
                "quarantined": sorted(self.quarantined),
                "degraded_shards": sorted(self._degraded_shards),
                "crashes": dict(self._crash_counts),
                "recoveries": [dict(entry) for entry in self._recovery_log],
            }

    def quarantined_by_shard(self) -> dict[str, list[str]]:
        """The quarantined-document *list*, grouped by owning shard.

        Keys are shard indices as strings (JSON object keys; ``"-1"`` for
        documents without a current shard assignment — non-``processes``
        strategies, or a document discarded after quarantine).  Health
        payloads include this unconditionally so a cluster supervisor can
        migrate poisoned documents specifically rather than inferring from
        the flat count.
        """
        with self._fault_lock:
            quarantined = sorted(self.quarantined)
        if not quarantined:
            return {}
        with self._pool_lock:
            shard_of = dict(self._shard_of)
        grouped: dict[str, list[str]] = {}
        for name in quarantined:
            grouped.setdefault(str(shard_of.get(name, -1)), []).append(name)
        return grouped

    def _retry_document(self, name: str, evaluate):
        """Run ``evaluate`` under the per-document retry budget."""
        attempt = 0
        while True:
            try:
                return evaluate()
            except Exception as error:  # noqa: BLE001 — budget decides
                attempt += 1
                if attempt > self.max_retries:
                    raise
                self._record_retry(type(error).__name__)
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    def _evaluate_in_parent(self, name: str, query_specs, engine: str):
        """Degraded-shard fallback: the worker's evaluation, in-process.

        Same payload shape as :func:`_worker_answer` so the supervised
        outer futures cannot tell which side of the breaker served them.
        """
        queries = []
        for text, variables in query_specs:
            key = (text, tuple(variables))
            query = self._spec_queries.get(key)
            if query is None:
                query = compile_query(text, tuple(variables), require_ppl=False)
                self._spec_queries[key] = query
            queries.append(query)
        document = self.store.get(name)
        return self._retry_document(
            name,
            lambda: _evaluate_document(
                document,
                queries,
                engine,
                self.metrics_registry,
                "processes",
                site="degraded",
                key=name,
            ),
        )

    def _document_error_records(
        self, name: str, query_specs, engine: str, error: BaseException
    ) -> Optional[list[CorpusResult]]:
        """Typed error records for a final failure, or ``None`` to re-raise.

        Quarantine always records (the whole point is not aborting the
        stream); otherwise ``on_error`` decides: ``"record"`` yields one
        error record per query, ``"skip"`` yields nothing, ``"raise"``
        returns ``None`` so the caller propagates.
        """
        if not isinstance(error, DocumentQuarantinedError):
            if self.on_error == "raise":
                return None
            if self.on_error == "skip":
                self.metrics_registry.counter(
                    "repro_documents_skipped_total",
                    "Documents dropped by on_error=skip after a final failure",
                    labels={"kind": type(error).__name__},
                ).inc()
                return []
        return [
            CorpusResult(
                doc_name=name,
                report=None,
                query=text,
                variables=tuple(variables),
                answers=frozenset(),
                seconds=0.0,
                error=str(error),
                error_kind=type(error).__name__,
            )
            for text, variables in query_specs
        ]

    def _quarantined_future(self, name: str) -> Future:
        """A pre-failed future for a document already in quarantine."""
        future: Future = Future()
        with self._fault_lock:
            crashes = self._crash_counts.get(name, QUARANTINE_AFTER)
        future.set_exception(DocumentQuarantinedError(name, crashes))
        return future

    def answer_cache_stats(self) -> Optional[dict]:
        """Aggregate answer-cache counters, wherever the caches live.

        For ``"serial"``/``"threads"`` this is the parent store's shared
        cache; for ``"processes"`` it sums over the live shard workers'
        caches (the parent cache sees no traffic there).  Returns ``None``
        when answer caching is disabled.
        """
        with self._pool_lock:
            if self.strategy != "processes" or self._pools is None:
                cache = self.store.answer_cache
                return cache.stats.to_dict() if cache is not None else None
            pools = [pool for pool in self._pools if pool is not None]
        totals: Optional[dict] = None
        for pool in pools:
            try:
                worker = pool.pool.submit(_worker_cache_stats).result()
            except RuntimeError:
                continue  # shut down by a concurrent targeted repartition
            if worker is None:
                continue
            if totals is None:
                totals = dict.fromkeys(worker, 0)
                totals["max_bytes"] = worker["max_bytes"]
            for field_name, value in worker.items():
                if field_name != "max_bytes" and value is not None:
                    totals[field_name] += value
        return totals

    def metrics(self) -> MetricsRegistry:
        """Merged evaluation metrics, wherever the observations happened.

        Returns a fresh :class:`repro.obs.metrics.MetricsRegistry` holding
        the parent-side histograms plus — for the processes strategy — the
        shard workers' histograms summed bucket-by-bucket, the same way
        :meth:`answer_cache_stats`/:meth:`snapshot_stats` aggregate their
        counters.
        """
        merged = MetricsRegistry()
        merged.merge(self.metrics_registry)
        with self._pool_lock:
            if self.strategy != "processes" or self._pools is None:
                return merged
            pools = [pool for pool in self._pools if pool is not None]
        for pool in pools:
            try:
                worker = pool.pool.submit(_worker_metrics).result()
            except RuntimeError:
                continue  # shut down by a concurrent targeted repartition
            if worker is not None:
                merged.merge(worker)
        return merged

    def run_report(
        self,
        queries: Union[BatchItem, Iterable[BatchItem]],
        documents: Optional[Sequence[str]] = None,
        *,
        engine: Optional[str] = None,
        ordered: bool = True,
    ):
        """Run and aggregate into a :class:`repro.corpus.report.CorpusReport`."""
        from repro.corpus.report import CorpusReport

        started = time.perf_counter()
        results = list(self.run(queries, documents, engine=engine, ordered=ordered))
        wall = time.perf_counter() - started
        return CorpusReport.from_results(
            results,
            strategy=self.strategy,
            engine=engine if engine is not None else self.engine,
            wall_seconds=wall,
            cache=self.answer_cache_stats(),
            snapshot=self.snapshot_stats(),
        )

    # ------------------------------------------------------------------ serial
    def _run_serial(
        self, names: Sequence[str], queries: Sequence[Query], engine: str
    ) -> Iterator[CorpusResult]:
        for name in names:
            document = self.store.get(name)
            yield from self._answer_document(name, document, queries, engine)

    def _answer_document(
        self, name: str, document: Document, queries: Sequence[Query], engine: str
    ) -> Iterator[CorpusResult]:
        """One document's results, under the retry budget and ``on_error``.

        Evaluation is buffered per document (not streamed per query) so a
        retry never re-yields a query the consumer already saw — the unit
        of retry and the unit of failure are the same.
        """
        try:
            payload = self._retry_document(
                name,
                lambda: _evaluate_document(
                    document,
                    queries,
                    engine,
                    self.metrics_registry,
                    self.strategy,
                    site=self.strategy,
                    key=name,
                ),
            )
        except Exception as error:  # noqa: BLE001 — on_error decides
            records = self._document_error_records(
                name, [_query_spec(query) for query in queries], engine, error
            )
            if records is None:
                raise
            yield from records
            return
        for text, variables, answers, report, elapsed in payload:
            yield CorpusResult(
                doc_name=name,
                report=report,
                query=text,
                variables=variables,
                answers=answers,
                seconds=elapsed,
            )

    # ----------------------------------------------------------------- threads
    def _run_threads(
        self, names: Sequence[str], queries: Sequence[Query], engine: str, ordered: bool
    ) -> Iterator[CorpusResult]:
        width = self.max_workers or min(8, (os.cpu_count() or 1) + 2)

        def answer_one(name: str) -> list[CorpusResult]:
            document = self.store.get(name)
            return list(self._answer_document(name, document, queries, engine))

        def generate() -> Iterator[CorpusResult]:
            with ThreadPoolExecutor(max_workers=width) as pool:
                futures = {index: pool.submit(answer_one, name)
                           for index, name in enumerate(names)}
                yield from _stream(futures, ordered)

        return generate()

    # --------------------------------------------------------------- processes
    def _shard_count(self, total: int) -> int:
        if self.max_workers is not None:
            return max(1, min(self.max_workers, total or 1))
        count = os.cpu_count() or 1
        return max(2, min(count, total)) if total > 1 else 1

    def _ensure_partition(self) -> None:
        """(Re)compute the document → shard assignment when needed.

        The first partition is contiguous by store order — balanced, and
        stable across runs, so a document always lands in the same worker,
        which is what makes the per-worker caches effective.  The partition
        covers the whole store, but pools are only spawned for shards that
        actually receive work (:meth:`_shard_pool`).

        Refresh is *targeted* and incremental: when the store version moves
        (and the shard count is unchanged), documents whose source token
        still matches keep their previous shard, new or replaced documents
        are placed on the least-loaded shard, and only the shards whose
        membership fingerprint — the (name, source token) tuple — actually
        changed are shut down and respawned; the rest keep their worker's
        document and answer caches warm across the corpus update.  An
        append therefore touches one shard, a discard only the shard that
        owned the document.  Comparing source tokens (not just names) means
        a discard + same-name re-add can never be served by a stale worker.
        A change in the shard count itself (corpus crossed the worker
        count, or ``max_workers`` semantics) falls back to a full rebuild.
        """
        with self._pool_lock:
            self._ensure_partition_locked()

    def _ensure_partition_locked(self) -> None:
        version = self.store.version
        if self._pools is not None and self._partition_version == version:
            return
        all_names = list(self.store.names())
        tokens = {name: self.store.source_token(name) for name in all_names}
        count = self._shard_count(len(all_names))
        previous_tokens = {
            name: token for shard in self._shard_tokens for name, token in shard
        }
        shards: list[list[str]] = [[] for _ in range(count)]
        if self._pools is not None and count == len(self._shard_names):
            # Incremental: keep surviving documents where they are, place
            # the rest (new names, replaced sources) on the smallest shard.
            placed = []
            for name in all_names:
                if (
                    name in self._shard_of
                    and previous_tokens.get(name) == tokens[name]
                ):
                    shards[self._shard_of[name]].append(name)
                else:
                    placed.append(name)
            for name in placed:
                target = min(range(count), key=lambda index: (len(shards[index]), index))
                shards[target].append(name)
        elif all_names:
            for index, name in enumerate(all_names):
                shards[index * count // len(all_names)].append(name)
        shard_names = [tuple(shard) for shard in shards]
        shard_tokens = [
            tuple((name, tokens[name]) for name in shard) for shard in shard_names
        ]
        pools: list[Optional[_ShardPool]] = [None] * count
        old_pools = self._pools
        if old_pools is not None:
            for shard_index, fingerprint in enumerate(shard_tokens):
                if (
                    shard_index < len(self._shard_tokens)
                    and self._shard_tokens[shard_index] == fingerprint
                    and old_pools[shard_index] is not None
                ):
                    pools[shard_index] = old_pools[shard_index]
                    old_pools[shard_index] = None
                    self.pools_kept += 1
            for stale in old_pools:
                if stale is not None:
                    stale.shutdown()
                    self.pools_rebuilt += 1
        self._pools = pools
        self._shard_names = shard_names
        self._shard_tokens = shard_tokens
        self._shard_of = {
            name: shard_index
            for shard_index, shard in enumerate(shard_names)
            for name in shard
        }
        self._partition_version = version

    def _shard_pool(self, shard_index: int) -> _ShardPool:
        """The shard's pool, spawned (with its source specs) on first use.

        Locked: concurrent ``submit_document`` calls must not both observe
        the empty slot and spawn duplicate pools (one would leak its worker
        process and split the shard's caches).
        """
        with self._pool_lock:
            assert self._pools is not None
            pool = self._pools[shard_index]
            if pool is None:
                shard_names = self._shard_names[shard_index]
                specs = {name: self.store.source_spec(name) for name in shard_names}
                pool = _ShardPool(
                    self,
                    shard_index,
                    shard_names,
                    specs,
                    self.store.max_resident,
                    self.store.answer_cache_bytes,
                    self.store.cache_answers,
                    self._worker_store_config(),
                )
                self._pools[shard_index] = pool
            return pool

    def _worker_store_config(self) -> Optional[dict]:
        """Resolved, picklable kernel/budget settings for shard workers.

        Only knobs the caller actually pinned ship to the worker (a kernel
        instance is reduced to its registry name); everything else stays
        unset so the worker's own environment-driven defaults apply.
        """
        config: dict = {}
        if self.kernel is not None:
            from repro.pplbin.bitmatrix import get_kernel

            config["kernel"] = get_kernel(self.kernel).name
        if self.store.matrix_cache_bytes is not _UNSET:
            config["matrix_cache_bytes"] = self.store.matrix_cache_bytes
        if self.store.snapshot_dir is not None:
            # Workers share the parent's snapshot directory: the store is
            # content-addressed and its writes are atomic renames, so
            # concurrent shard workers cooperate instead of clobbering.
            config["snapshot_dir"] = self.store.snapshot_dir
            config["snapshot_bytes"] = self.store.snapshot_bytes
        return config or None

    def worker_stats(self) -> StoreStats:
        """Aggregate (loads, hits, evictions) over the live shard workers.

        The process strategy materialises documents inside the workers, so
        the parent store's counters stay at zero; this is the counterpart
        snapshot.  Returns zeros when no shard pool has been spawned (other
        strategies, or before the first run).
        """
        totals = [0] * 6
        with self._pool_lock:
            pools = [pool for pool in self._pools or () if pool is not None]
        for pool in pools:
            try:
                counters = pool.pool.submit(_worker_stats).result()
            except RuntimeError:
                continue  # shut down by a concurrent targeted repartition
            for index, value in enumerate(counters):
                totals[index] += value
        loads, hits, evictions, parses, snap_hits, snap_misses = totals
        return StoreStats(
            loads=loads,
            hits=hits,
            evictions=evictions,
            parse_count=parses,
            snapshot_hits=snap_hits,
            snapshot_misses=snap_misses,
        )

    def snapshot_stats(self) -> Optional[dict]:
        """Aggregate snapshot-store counters, wherever the stores live.

        Mirrors :meth:`answer_cache_stats`: for ``"serial"``/``"threads"``
        the parent store's snapshot store sees all the traffic; for
        ``"processes"`` the per-worker stores do, so their counters are
        summed (the sizing fields — bytes/files/budget — describe the one
        shared directory and are taken from the last worker rather than
        summed).  Returns ``None`` when no snapshot directory is configured.
        """
        with self._pool_lock:
            if self.strategy != "processes" or self._pools is None:
                return self.store.snapshot_stats()
            pools = [pool for pool in self._pools if pool is not None]
        totals: Optional[dict] = None
        shared = ("total_bytes", "trees", "answers", "max_bytes")
        for pool in pools:
            try:
                worker = pool.pool.submit(_worker_snapshot_stats).result()
            except RuntimeError:
                continue  # shut down by a concurrent targeted repartition
            if worker is None:
                continue
            if totals is None:
                totals = dict.fromkeys(worker, 0)
            for field_name, value in worker.items():
                if field_name in shared:
                    totals[field_name] = value
                else:
                    totals[field_name] += value
        if totals is None:
            return self.store.snapshot_stats()
        return totals

    def _run_processes(
        self, names: Sequence[str], queries: Sequence[Query], engine: str, ordered: bool
    ) -> Iterator[CorpusResult]:
        self._ensure_partition()
        query_specs = [_query_spec(query) for query in queries]

        def generate() -> Iterator[CorpusResult]:
            futures: dict[int, Future] = {}
            # One lock hold across shard lookup and submits: a concurrent
            # targeted repartition (submit_document after a store change)
            # must not shut a pool down or remap shards mid-batch.
            with self._pool_lock:
                with _trace.span("shard.dispatch", documents=len(names)):
                    for index, name in enumerate(names):
                        if name in self.quarantined:
                            futures[index] = self._quarantined_future(name)
                            continue
                        shard = self._shard_pool(self._shard_of[name])
                        futures[index] = shard.submit(name, query_specs, engine)

            def unpack(index: int, payload) -> list[CorpusResult]:
                name = names[index]
                return [
                    CorpusResult(
                        doc_name=name,
                        report=report,
                        query=text,
                        variables=variables,
                        answers=answers,
                        seconds=elapsed,
                    )
                    for text, variables, answers, report, elapsed in payload
                ]

            def on_error(index: int, error: BaseException) -> list[CorpusResult]:
                records = self._document_error_records(
                    names[index], query_specs, engine, error
                )
                if records is None:
                    raise error
                return records

            yield from _stream(futures, ordered, unpack, on_error)

        return generate()

    # --------------------------------------------------------------- internals
    def _normalise_queries(
        self, queries: Union[BatchItem, Iterable[BatchItem]]
    ) -> list[Query]:
        items = iter_batch(queries)
        compiled: list[Query] = []
        for item in items:
            if isinstance(item, Query):
                compiled.append(item)
            elif isinstance(item, tuple):
                expression, variables = item
                compiled.append(compile_query(expression, tuple(variables), require_ppl=False))
            else:
                compiled.append(compile_query(item, (), require_ppl=False))
        return compiled


def _stream(
    futures: dict[int, Future], ordered: bool, unpack=None, on_error=None
) -> Iterator[CorpusResult]:
    """Yield per-document result lists from indexed futures, streaming.

    With ``ordered`` the next document in index order is yielded as soon as
    it (and everything before it) is done; otherwise documents are yielded
    in completion order.  A future that fails goes through ``on_error``
    (which returns substitute error records, or re-raises) when given;
    without it worker exceptions propagate to the consumer.
    """

    def results_of(index: int, future: Future):
        try:
            payload = future.result()
        except Exception as error:  # noqa: BLE001 — on_error decides
            if on_error is None:
                raise
            return on_error(index, error)
        return unpack(index, payload) if unpack else payload

    if ordered:
        for index in sorted(futures):
            yield from results_of(index, futures[index])
    else:
        remaining = {future: index for index, future in futures.items()}
        while remaining:
            done, _ = wait(list(remaining), return_when=FIRST_COMPLETED)
            for future in done:
                index = remaining.pop(future)
                yield from results_of(index, future)


def answer_corpus(
    store: DocumentStore,
    queries: Union[BatchItem, Iterable[BatchItem]],
    *,
    strategy: str = "serial",
    engine: str = DEFAULT_ENGINE,
    max_workers: Optional[int] = None,
    ordered: bool = True,
) -> Iterator[CorpusResult]:
    """One-shot convenience: run queries over a store and stream the results.

    For the process strategy prefer a long-lived :class:`CorpusExecutor` —
    this helper tears its worker pools (and their caches) down when the
    iterator is exhausted.
    """
    executor = CorpusExecutor(
        store, strategy=strategy, max_workers=max_workers, engine=engine
    )

    def generate() -> Iterator[CorpusResult]:
        try:
            yield from executor.run(queries, ordered=ordered)
        finally:
            executor.close()

    return generate()
