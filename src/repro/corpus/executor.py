"""Parallel corpus query execution with streaming results.

The :class:`CorpusExecutor` runs one or many compiled queries across the
documents of a :class:`repro.corpus.store.DocumentStore` under one of three
strategies:

``"serial"``
    One pass over the documents in the calling thread.  Fully lazy: a
    document is materialised only when the consumer pulls its results, so a
    bounded store never holds more than its cap plus one.

``"threads"``
    A ``ThreadPoolExecutor`` sharing the store (which is thread-safe).  Most
    useful when query evaluation spends its time in numpy — the boolean
    matrix products release the GIL.

``"processes"``
    Documents are sharded across *dedicated* single-worker process pools —
    one ``ProcessPoolExecutor(max_workers=1)`` per shard — rather than one
    shared pool.  The pinning is the point: each worker owns a fixed
    partition of the corpus and keeps its own LRU document cache, so across
    repeated batches a shard's oracle matrices are built exactly once in
    exactly one process.  (A shared pool routes tasks to arbitrary workers,
    which turns every per-worker cache into an accidental thrash.)  Sources
    ship as picklable ``(kind, payload)`` specs and answers ship back as
    plain frozensets; the dense oracle matrices never cross a process
    boundary because they are far cheaper to rebuild than to pickle.

Results stream back as :class:`CorpusResult` values — an iterator, not a
list, so aggregation, early exit and pipelining all work without holding a
corpus worth of answer sets.  With ``ordered=True`` (the default) results
arrive in deterministic store order regardless of completion order; with
``ordered=False`` they arrive as soon as any worker finishes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.core.engine import QueryReport
from repro.api.document import BatchItem, Document
from repro.api.query import Query, compile_query
from repro.api.registry import DEFAULT_ENGINE
from repro.corpus.store import CorpusError, DocumentStore, StoreStats

STRATEGIES = ("serial", "threads", "processes")


@dataclass(frozen=True)
class CorpusResult:
    """One document's answer to one query.

    Iterating the result yields ``(doc_name, report)``, so the streaming
    iterator can be consumed as advertised::

        for doc_name, report in executor.run(query):
            ...

    while the full answer set, timing and query text stay available as
    attributes.
    """

    doc_name: str
    report: QueryReport
    query: str
    variables: tuple[str, ...]
    answers: frozenset[tuple[int, ...]]
    seconds: float

    def __iter__(self):
        yield self.doc_name
        yield self.report


# --------------------------------------------------------------- worker side
#
# Module-level state and functions for the process strategy.  Each shard
# worker process initialises `_WORKER` once with its partition's source
# specs, rebuilt into a local :class:`DocumentStore` — the same tested LRU
# residency code that runs in the parent — plus a compiled-query cache.
_WORKER: dict = {}


def _worker_initialise(specs: dict[str, tuple[str, str]], max_resident: Optional[int]) -> None:
    store = DocumentStore(max_resident=max_resident)
    for name, (kind, payload) in specs.items():
        if kind == "xml":
            store.add_xml(name, payload)
        else:
            store.add_file(payload, name=name)
    _WORKER["store"] = store
    _WORKER["queries"] = {}


def _worker_query(text: str, variables: tuple[str, ...]) -> Query:
    key = (text, variables)
    query = _WORKER["queries"].get(key)
    if query is None:
        query = compile_query(text, variables, require_ppl=False)
        _WORKER["queries"][key] = query
    return query


def _worker_answer(
    name: str, query_specs: Sequence[tuple[str, tuple[str, ...]]], engine: str
) -> list[tuple[str, tuple[str, ...], frozenset, QueryReport, float]]:
    """Answer every query on one document inside the shard worker."""
    document = _WORKER["store"].get(name)
    results = []
    for text, variables in query_specs:
        query = _worker_query(text, variables)
        started = time.perf_counter()
        answers = document.answer(query, engine=engine)
        elapsed = time.perf_counter() - started
        report = document.report(query, engine=engine, answers=answers)
        results.append((text, variables, answers, report, elapsed))
    return results


def _worker_stats() -> tuple[int, int, int]:
    """The shard worker's (loads, hits, evictions) counters."""
    stats = _WORKER["store"].stats
    return (stats.loads, stats.hits, stats.evictions)


# --------------------------------------------------------------- shard pools
class _ShardPool:
    """A single-worker process pool owning a fixed document partition."""

    def __init__(self, doc_names: Sequence[str], specs: dict[str, tuple[str, str]],
                 max_resident: Optional[int]) -> None:
        self.doc_names = tuple(doc_names)
        self.pool = ProcessPoolExecutor(
            max_workers=1,
            initializer=_worker_initialise,
            initargs=(specs, max_resident),
        )

    def submit(self, name: str, query_specs, engine: str) -> Future:
        return self.pool.submit(_worker_answer, name, query_specs, engine)

    def shutdown(self) -> None:
        self.pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------- executor
class CorpusExecutor:
    """Run compiled queries across a document store, streaming the results.

    Parameters
    ----------
    store:
        The corpus.  For ``"processes"`` every registered document must have
        a picklable source spec (always true: trees are serialised to XML).
    strategy:
        ``"serial"`` (default), ``"threads"`` or ``"processes"``.
    max_workers:
        Thread-pool width, or the number of shards for ``"processes"``.
        An explicit value is honoured exactly (capped at the corpus size);
        the default is ``os.cpu_count()``, raised to at least 2 shards so
        sharding is observable even on one-core machines.
    engine:
        Default registry engine for :meth:`run` (overridable per call).

    The executor is a context manager; ``"processes"`` keeps its shard pools
    (and therefore the per-worker document caches) alive across :meth:`run`
    calls until :meth:`close` or context exit.
    """

    def __init__(
        self,
        store: DocumentStore,
        *,
        strategy: str = "serial",
        max_workers: Optional[int] = None,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        if strategy not in STRATEGIES:
            raise CorpusError(
                f"unknown strategy {strategy!r}; expected one of {', '.join(STRATEGIES)}"
            )
        self.store = store
        self.strategy = strategy
        self.max_workers = max_workers
        self.engine = engine
        #: Shard pools, created lazily per shard on first submit (None =
        #: partition slot whose pool has not been needed yet).
        self._pools: Optional[list[Optional[_ShardPool]]] = None
        self._shard_names: list[tuple[str, ...]] = []
        self._shard_of: dict[str, int] = {}
        self._partition_version: Optional[int] = None

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down any worker pools (dropping per-worker caches)."""
        if self._pools is not None:
            for pool in self._pools:
                if pool is not None:
                    pool.shutdown()
            self._pools = None
            self._shard_names = []
            self._shard_of = {}
            self._partition_version = None

    def __enter__(self) -> "CorpusExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------- public
    def run(
        self,
        queries: Union[BatchItem, Iterable[BatchItem]],
        documents: Optional[Sequence[str]] = None,
        *,
        engine: Optional[str] = None,
        ordered: bool = True,
    ) -> Iterator[CorpusResult]:
        """Stream ``CorpusResult``s for every (document, query) pair.

        Parameters
        ----------
        queries:
            One query or an iterable of queries; each is a compiled
            :class:`Query`, an expression (text or AST), or an
            ``(expression, variables)`` pair.
        documents:
            Names to run on (default: every document, in store order).
        engine:
            Registry engine override for this call.
        ordered:
            With ``True`` results arrive in deterministic (document, query)
            order; with ``False`` in completion order.
        """
        engine_name = engine if engine is not None else self.engine
        compiled = self._normalise_queries(queries)
        names = list(documents) if documents is not None else list(self.store.names())
        for name in names:
            if name not in self.store:
                raise CorpusError(f"unknown document {name!r}")
        if self.strategy == "serial":
            return self._run_serial(names, compiled, engine_name)
        if self.strategy == "threads":
            return self._run_threads(names, compiled, engine_name, ordered)
        return self._run_processes(names, compiled, engine_name, ordered)

    def run_report(
        self,
        queries: Union[BatchItem, Iterable[BatchItem]],
        documents: Optional[Sequence[str]] = None,
        *,
        engine: Optional[str] = None,
        ordered: bool = True,
    ):
        """Run and aggregate into a :class:`repro.corpus.report.CorpusReport`."""
        from repro.corpus.report import CorpusReport

        started = time.perf_counter()
        results = list(self.run(queries, documents, engine=engine, ordered=ordered))
        wall = time.perf_counter() - started
        return CorpusReport.from_results(
            results,
            strategy=self.strategy,
            engine=engine if engine is not None else self.engine,
            wall_seconds=wall,
        )

    # ------------------------------------------------------------------ serial
    def _run_serial(
        self, names: Sequence[str], queries: Sequence[Query], engine: str
    ) -> Iterator[CorpusResult]:
        for name in names:
            document = self.store.get(name)
            yield from self._answer_document(name, document, queries, engine)

    def _answer_document(
        self, name: str, document: Document, queries: Sequence[Query], engine: str
    ) -> Iterator[CorpusResult]:
        for query in queries:
            started = time.perf_counter()
            answers = document.answer(query, engine=engine)
            elapsed = time.perf_counter() - started
            report = document.report(query, engine=engine, answers=answers)
            yield CorpusResult(
                doc_name=name,
                report=report,
                query=query.unparse(),
                variables=query.variables,
                answers=answers,
                seconds=elapsed,
            )

    # ----------------------------------------------------------------- threads
    def _run_threads(
        self, names: Sequence[str], queries: Sequence[Query], engine: str, ordered: bool
    ) -> Iterator[CorpusResult]:
        width = self.max_workers or min(8, (os.cpu_count() or 1) + 2)

        def answer_one(name: str) -> list[CorpusResult]:
            document = self.store.get(name)
            return list(self._answer_document(name, document, queries, engine))

        def generate() -> Iterator[CorpusResult]:
            with ThreadPoolExecutor(max_workers=width) as pool:
                futures = {index: pool.submit(answer_one, name)
                           for index, name in enumerate(names)}
                yield from _stream(futures, ordered)

        return generate()

    # --------------------------------------------------------------- processes
    def _ensure_partition(self) -> None:
        """(Re)compute the document → shard assignment when needed.

        Sharding is by store order, contiguously, so the partition is stable
        across runs: a document always lands in the same worker, which is
        what makes the per-worker caches effective.  The partition covers
        the whole store, but pools are only spawned for shards that actually
        receive work (:meth:`_shard_pool`).  Any source change — additions,
        discards, and same-name replacement — bumps the store version and
        invalidates the partition together with every worker cache.
        """
        if (
            self._pools is not None
            and self._partition_version == self.store.version
        ):
            return
        self.close()
        all_names = list(self.store.names())
        if self.max_workers is not None:
            count = max(1, min(self.max_workers, len(all_names) or 1))
        else:
            count = os.cpu_count() or 1
            count = max(2, min(count, len(all_names))) if len(all_names) > 1 else 1
        shards: list[list[str]] = [[] for _ in range(count)]
        for index, name in enumerate(all_names):
            shards[index * count // len(all_names)].append(name)
        self._shard_names = [tuple(shard) for shard in shards]
        self._shard_of = {
            name: shard_index
            for shard_index, shard in enumerate(self._shard_names)
            for name in shard
        }
        self._pools = [None] * count
        self._partition_version = self.store.version

    def _shard_pool(self, shard_index: int) -> _ShardPool:
        """The shard's pool, spawned (with its source specs) on first use."""
        assert self._pools is not None
        pool = self._pools[shard_index]
        if pool is None:
            shard_names = self._shard_names[shard_index]
            specs = {name: self.store.source_spec(name) for name in shard_names}
            pool = _ShardPool(shard_names, specs, self.store.max_resident)
            self._pools[shard_index] = pool
        return pool

    def worker_stats(self) -> StoreStats:
        """Aggregate (loads, hits, evictions) over the live shard workers.

        The process strategy materialises documents inside the workers, so
        the parent store's counters stay at zero; this is the counterpart
        snapshot.  Returns zeros when no shard pool has been spawned (other
        strategies, or before the first run).
        """
        loads = hits = evictions = 0
        for pool in self._pools or ():
            if pool is not None:
                worker_loads, worker_hits, worker_evictions = pool.pool.submit(
                    _worker_stats
                ).result()
                loads += worker_loads
                hits += worker_hits
                evictions += worker_evictions
        return StoreStats(loads=loads, hits=hits, evictions=evictions)

    def _run_processes(
        self, names: Sequence[str], queries: Sequence[Query], engine: str, ordered: bool
    ) -> Iterator[CorpusResult]:
        self._ensure_partition()
        query_specs = [(query.unparse(), query.variables) for query in queries]

        def generate() -> Iterator[CorpusResult]:
            futures: dict[int, Future] = {}
            for index, name in enumerate(names):
                shard = self._shard_pool(self._shard_of[name])
                futures[index] = shard.submit(name, query_specs, engine)

            def unpack(index: int, payload) -> list[CorpusResult]:
                name = names[index]
                return [
                    CorpusResult(
                        doc_name=name,
                        report=report,
                        query=text,
                        variables=variables,
                        answers=answers,
                        seconds=elapsed,
                    )
                    for text, variables, answers, report, elapsed in payload
                ]

            yield from _stream(futures, ordered, unpack)

        return generate()

    # --------------------------------------------------------------- internals
    def _normalise_queries(
        self, queries: Union[BatchItem, Iterable[BatchItem]]
    ) -> list[Query]:
        items: Iterable[BatchItem]
        if isinstance(queries, (str, Query)) or not isinstance(queries, Iterable):
            items = [queries]
        elif isinstance(queries, tuple) and len(queries) == 2 and isinstance(
            queries[1], (list, tuple)
        ) and all(isinstance(v, str) for v in queries[1]):
            # A single (expression, variables) pair, not a list of two queries.
            items = [queries]
        else:
            items = list(queries)
        compiled: list[Query] = []
        for item in items:
            if isinstance(item, Query):
                compiled.append(item)
            elif isinstance(item, tuple):
                expression, variables = item
                compiled.append(compile_query(expression, tuple(variables), require_ppl=False))
            else:
                compiled.append(compile_query(item, (), require_ppl=False))
        return compiled


def _stream(
    futures: dict[int, Future], ordered: bool, unpack=None
) -> Iterator[CorpusResult]:
    """Yield per-document result lists from indexed futures, streaming.

    With ``ordered`` the next document in index order is yielded as soon as
    it (and everything before it) is done; otherwise documents are yielded in
    completion order.  Worker exceptions propagate to the consumer.
    """
    if ordered:
        for index in sorted(futures):
            payload = futures[index].result()
            yield from unpack(index, payload) if unpack else payload
    else:
        remaining = {future: index for index, future in futures.items()}
        while remaining:
            done, _ = wait(list(remaining), return_when=FIRST_COMPLETED)
            for future in done:
                index = remaining.pop(future)
                payload = future.result()
                yield from unpack(index, payload) if unpack else payload


def answer_corpus(
    store: DocumentStore,
    queries: Union[BatchItem, Iterable[BatchItem]],
    *,
    strategy: str = "serial",
    engine: str = DEFAULT_ENGINE,
    max_workers: Optional[int] = None,
    ordered: bool = True,
) -> Iterator[CorpusResult]:
    """One-shot convenience: run queries over a store and stream the results.

    For the process strategy prefer a long-lived :class:`CorpusExecutor` —
    this helper tears its worker pools (and their caches) down when the
    iterator is exhausted.
    """
    executor = CorpusExecutor(
        store, strategy=strategy, max_workers=max_workers, engine=engine
    )

    def generate() -> Iterator[CorpusResult]:
        try:
            yield from executor.run(queries, ordered=ordered)
        finally:
            executor.close()

    return generate()
