"""Corpus-wide, byte-budgeted memoisation of complete answer sets.

The seed memoised answers *per document*: every :class:`repro.api.Document`
owned an unbounded ``(query, engine) -> frozenset`` dict that lived and died
with the document, so the only bound on answer-memo memory was the store's
document LRU — eviction threw away answers that were still valid (sources
are immutable), and a corpus with one hot document and many cold ones spent
its whole budget on residency instead of answers.

:class:`AnswerCache` replaces that with one shared, thread-safe cache per
:class:`repro.corpus.store.DocumentStore`, accounted in *bytes* rather than
entry counts:

* entries are keyed by ``(owner, source AST, variables, engine)`` where
  ``owner`` is a token identifying the registered *source* (not the
  materialised document), so answers survive document eviction and are
  reused when the document is reloaded;
* the budget is enforced by least-recently-used eviction over an estimate of
  each answer set's memory footprint;
* hit/miss/insertion/eviction counters and the current byte total are
  exposed as :class:`AnswerCacheStats` — surfaced by
  :class:`repro.corpus.report.CorpusReport` and the serving layer's
  ``ServerStats``.

Discarding a source calls :meth:`AnswerCache.drop_owner` so replaced
documents can never serve stale answers.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

#: CPython footprint of a small int object; answer tuples hold node ids.
_INT_BYTES = 28


def estimate_answer_bytes(answers: frozenset) -> int:
    """Estimate the resident footprint of one answer set in bytes.

    Counts the frozenset, each tuple and a fixed per-int cost.  Node ids in
    one document repeat across tuples (and small ints are interned), so this
    over-approximates — the safe direction for a budget.
    """
    total = sys.getsizeof(answers)
    for answer in answers:
        total += sys.getsizeof(answer) + _INT_BYTES * len(answer)
    return total


def estimate_entry_bytes(value) -> int:
    """Estimate the footprint of any cached value.

    Answer sets go through :func:`estimate_answer_bytes`; everything else —
    packed matrices (:class:`repro.pplbin.bitmatrix.Relation` objects) and
    raw numpy arrays, which both expose ``nbytes`` — is charged by the same
    :func:`repro.trees.tree.estimate_value_bytes` the per-tree matrix cache
    uses, so a cache holding bitset relations pays n^2/8 bytes rather than a
    meaningless ``getsizeof`` of the wrapper object.
    """
    if isinstance(value, frozenset):
        return estimate_answer_bytes(value)
    from repro.trees.tree import estimate_value_bytes

    return estimate_value_bytes(value)


@dataclass(frozen=True)
class AnswerCacheStats:
    """Counters describing a cache's behaviour, plus its current footprint."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    current_bytes: int = 0
    max_bytes: Optional[int] = None
    entries: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "entries": self.entries,
        }


class AnswerCache:
    """A shared LRU answer-set cache bounded by total estimated bytes.

    Parameters
    ----------
    max_bytes:
        Byte budget over every entry's estimated footprint (``None`` =
        unbounded).  A single answer set larger than the whole budget is not
        cached at all — storing it would evict everything else for an entry
        that cannot pay for itself.
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (or None for unbounded)")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[tuple, tuple[frozenset, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0

    def get(self, key: tuple) -> Optional[frozenset]:
        """Return the cached answer set, bumping its recency, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: tuple, answers) -> None:
        """Insert an entry (answer set or packed matrix), evicting LRU to budget."""
        cost = estimate_entry_bytes(answers)
        with self._lock:
            if self.max_bytes is not None and cost > self.max_bytes:
                return
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous[1]
            self._entries[key] = (answers, cost)
            self._bytes += cost
            self._insertions += 1
            while self.max_bytes is not None and self._bytes > self.max_bytes:
                _, (_, evicted_cost) = self._entries.popitem(last=False)
                self._bytes -= evicted_cost
                self._evictions += 1

    def drop_owner(self, owner: Hashable) -> int:
        """Remove every entry whose key starts with ``owner``; return the count.

        Called when a source is discarded from the store, so a later document
        registered under the same name can never see the old answers.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == owner]
            for key in stale:
                _, cost = self._entries.pop(key)
                self._bytes -= cost
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    @property
    def stats(self) -> AnswerCacheStats:
        """A consistent snapshot of the counters and footprint."""
        with self._lock:
            return AnswerCacheStats(
                hits=self._hits,
                misses=self._misses,
                insertions=self._insertions,
                evictions=self._evictions,
                current_bytes=self._bytes,
                max_bytes=self.max_bytes,
                entries=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnswerCache(entries={len(self)}, bytes={self._bytes}, "
            f"max_bytes={self.max_bytes})"
        )
