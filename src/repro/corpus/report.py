"""Aggregate reporting for corpus runs.

A :class:`CorpusReport` summarises one :meth:`CorpusExecutor.run` (or any
collected stream of :class:`repro.corpus.executor.CorpusResult`): per-result
entries (document, query, engine, timing, answer count) plus corpus-level
totals.  ``to_dict``/``to_json`` mirror :class:`repro.api.QueryReport`, so
the CLI and the benchmarks emit the same machine-readable shape at both
granularities.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.executor import CorpusResult


@dataclass(frozen=True)
class CorpusEntry:
    """One (document, query) outcome inside a corpus report.

    ``error``/``error_kind`` are set for typed error records (a document
    whose final failure was recorded under ``on_error="record"`` or by
    quarantine); such entries carry no engine/tree data and count zero
    answers.
    """

    doc_name: str
    query: str
    variables: tuple[str, ...]
    engine: Optional[str]
    answer_count: int
    tree_size: Optional[int]
    seconds: float
    error: Optional[str] = None
    error_kind: Optional[str] = None

    def to_dict(self) -> dict:
        payload = {
            "doc_name": self.doc_name,
            "query": self.query,
            "variables": list(self.variables),
            "engine": self.engine,
            "answer_count": self.answer_count,
            "tree_size": self.tree_size,
            "seconds": self.seconds,
        }
        if self.error is not None:
            payload["error"] = self.error
            payload["error_kind"] = self.error_kind
        return payload


@dataclass(frozen=True)
class CorpusReport:
    """Aggregate outcome of running queries across a corpus.

    Attributes
    ----------
    strategy:
        Execution strategy that produced the results.
    engine:
        Engine the run was dispatched to.
    entries:
        Per-(document, query) outcomes, in result order.
    wall_seconds:
        End-to-end wall-clock of the run (``None`` when the results were
        collected outside :meth:`CorpusExecutor.run_report`).
    cache:
        Answer-cache telemetry for the run — the
        :meth:`repro.corpus.cache.AnswerCacheStats.to_dict` snapshot
        aggregated by :meth:`CorpusExecutor.answer_cache_stats` (``None``
        when answer caching is off or the stats were not collected).
    snapshot:
        Snapshot-store telemetry for the run — the
        :meth:`repro.corpus.store.DocumentStore.snapshot_stats` dict
        aggregated by :meth:`CorpusExecutor.snapshot_stats` (``None`` when
        no snapshot directory is configured).
    """

    strategy: str
    engine: Optional[str]
    entries: tuple[CorpusEntry, ...] = field(default_factory=tuple)
    wall_seconds: Optional[float] = None
    cache: Optional[dict] = None
    snapshot: Optional[dict] = None

    @classmethod
    def from_results(
        cls,
        results: Iterable["CorpusResult"],
        *,
        strategy: str,
        engine: Optional[str] = None,
        wall_seconds: Optional[float] = None,
        cache: Optional[dict] = None,
        snapshot: Optional[dict] = None,
    ) -> "CorpusReport":
        """Aggregate a (collected or streaming) result sequence."""
        entries = tuple(
            CorpusEntry(
                doc_name=result.doc_name,
                query=result.query,
                variables=result.variables,
                engine=result.report.engine if result.report is not None else None,
                answer_count=(
                    result.report.answer_count if result.report is not None else 0
                ),
                tree_size=(
                    result.report.tree_size if result.report is not None else None
                ),
                seconds=result.seconds,
                error=getattr(result, "error", None),
                error_kind=getattr(result, "error_kind", None),
            )
            for result in results
        )
        return cls(
            strategy=strategy,
            engine=engine,
            entries=entries,
            wall_seconds=wall_seconds,
            cache=cache,
            snapshot=snapshot,
        )

    # ------------------------------------------------------------- aggregates
    @property
    def document_count(self) -> int:
        """Distinct documents that produced at least one result."""
        return len({entry.doc_name for entry in self.entries})

    @property
    def query_count(self) -> int:
        """Distinct queries answered."""
        return len({(entry.query, entry.variables) for entry in self.entries})

    @property
    def total_answers(self) -> int:
        """Sum of answer-set sizes over every (document, query) pair."""
        return sum(entry.answer_count for entry in self.entries)

    @property
    def total_seconds(self) -> float:
        """Sum of per-result evaluation times (excludes load/dispatch)."""
        return sum(entry.seconds for entry in self.entries)

    @property
    def error_count(self) -> int:
        """Entries that are typed error records rather than answers."""
        return sum(1 for entry in self.entries if entry.error is not None)

    def per_document(self) -> dict[str, dict]:
        """Per-document rollup: results, answers, seconds, tree size."""
        rollup: dict[str, dict] = {}
        for entry in self.entries:
            record = rollup.setdefault(
                entry.doc_name,
                {"results": 0, "answers": 0, "seconds": 0.0, "tree_size": entry.tree_size},
            )
            record["results"] += 1
            record["answers"] += entry.answer_count
            record["seconds"] += entry.seconds
        return rollup

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> dict:
        """Return a JSON-ready dict (entries included)."""
        return {
            "strategy": self.strategy,
            "engine": self.engine,
            "documents": self.document_count,
            "queries": self.query_count,
            "results": len(self.entries),
            "errors": self.error_count,
            "total_answers": self.total_answers,
            "total_seconds": self.total_seconds,
            "wall_seconds": self.wall_seconds,
            "cache": self.cache,
            "snapshot": self.snapshot,
            "per_document": self.per_document(),
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def to_json(self, **kwargs) -> str:
        """Return the report as a JSON object string."""
        return json.dumps(self.to_dict(), **kwargs)
