"""The on-disk snapshot store: content-addressed trees and spilled answers.

:class:`SnapshotStore` manages one directory of snapshot artefacts:

* ``<sha256>.snap`` — columnar document snapshots (:mod:`repro.snapshot.codec`),
  addressed by the SHA-256 digest of the *source payload* (XML text or file
  bytes), so a changed source can never resolve to a stale snapshot;
* ``<sha256>.ans`` — spilled answer sets, addressed by the
  ``(doc digest, plan key, engine)`` triple, so a warm start skips the first
  evaluation as well as the parse.

The store follows :class:`repro.serve.plancache.PlanCache` semantics
throughout: **corruption-tolerant** loads (any malformed, truncated,
version-skewed or identity-mismatched file counts as a miss, is deleted
best-effort, and the caller rebuilds — a damaged store costs time, never
correctness), **atomic** writes (unique temp file + ``os.replace``), and a
**byte-budgeted LRU** over the artefact files ordered by access time (hits
``os.utime``-touch their file).  Multiple processes — the executor's shard
workers — share one directory safely.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro import faults
from repro._config import UNSET as _UNSET
from repro.errors import FaultInjectedError
from repro.obs import trace as _trace
from repro.snapshot.codec import FORMAT_VERSION, SnapshotError, decode_snapshot, encode_snapshot
from repro.trees.tree import Tree

TREE_SUFFIX = ".snap"
ANSWER_SUFFIX = ".ans"
_SUFFIXES = (TREE_SUFFIX, ANSWER_SUFFIX)


@dataclass(frozen=True)
class SnapshotStats:
    """Counters for one store instance (not persisted across processes)."""

    tree_hits: int = 0
    tree_misses: int = 0
    tree_stores: int = 0
    answer_hits: int = 0
    answer_misses: int = 0
    answer_stores: int = 0
    invalid: int = 0
    evictions: int = 0

    def to_dict(self) -> dict:
        return {
            "tree_hits": self.tree_hits,
            "tree_misses": self.tree_misses,
            "tree_stores": self.tree_stores,
            "answer_hits": self.answer_hits,
            "answer_misses": self.answer_misses,
            "answer_stores": self.answer_stores,
            "invalid": self.invalid,
            "evictions": self.evictions,
        }


class SnapshotStore:
    """One directory of content-addressed snapshots and spilled answers.

    Parameters
    ----------
    directory:
        Where the artefacts live; created on first write.
    max_bytes:
        Total byte budget over every artefact file (``None`` = unbounded),
        enforced after each store by deleting least-recently-*accessed*
        files first (GC also callable explicitly via :meth:`gc`).
    """

    def __init__(
        self, directory: Union[str, Path], *, max_bytes: Optional[int] = None
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (or None for unbounded)")
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._tree_hits = 0
        self._tree_misses = 0
        self._tree_stores = 0
        self._answer_hits = 0
        self._answer_misses = 0
        self._answer_stores = 0
        self._invalid = 0
        self._evictions = 0

    # ---------------------------------------------------------------- digests
    @staticmethod
    def digest_bytes(payload: bytes) -> str:
        """The content address of one source payload: SHA-256 hex."""
        return hashlib.sha256(payload).hexdigest()

    def digest_source(self, kind: str, payload: str) -> Optional[str]:
        """Digest one picklable source spec (``DocumentSource.spec()`` shape).

        ``"xml"`` digests the text; ``"file"`` digests the file *bytes* (so
        an edited file revalidates to a different address — the snapshot of
        the old content simply stops being found).  Unreadable files and
        unknown kinds return ``None``: the caller falls back to the normal
        parse path, which will raise its own (typed, actionable) error.
        """
        if kind == "xml":
            return self.digest_bytes(payload.encode("utf-8"))
        if kind == "file":
            try:
                return self.digest_bytes(Path(payload).read_bytes())
            except OSError:
                return None
        return None

    @staticmethod
    def answer_key(
        digest: str, plan: str, variables: Sequence[str], engine: str
    ) -> str:
        """The content address of one spilled answer set.

        SHA-256 over the format version, the document digest, the plan text,
        the output-variable tuple and the engine name, JSON-framed so fields
        cannot collide.
        """
        identity = json.dumps(
            [FORMAT_VERSION, "answers", digest, plan, list(variables), engine],
            separators=(",", ":"),
        )
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()

    def tree_path(self, digest: str) -> Path:
        """The file a snapshot for this source digest lives at."""
        return self.directory / (digest + TREE_SUFFIX)

    def answer_path(
        self, digest: str, plan: str, variables: Sequence[str], engine: str
    ) -> Path:
        """The file a spilled answer set for this identity lives at."""
        return self.directory / (
            self.answer_key(digest, plan, variables, engine) + ANSWER_SUFFIX
        )

    # ------------------------------------------------------------------ trees
    def has_tree(self, digest: str) -> bool:
        """Whether a snapshot file exists for ``digest`` (no validation)."""
        return self.tree_path(digest).is_file()

    def load_tree(self, digest: str, *, matrix_cache_bytes=_UNSET) -> Optional[Tree]:
        """Load the snapshot for ``digest``, or ``None`` on miss or damage.

        Never raises for store trouble: a malformed, truncated,
        version-skewed or digest-mismatched file is deleted (best-effort)
        and reported as a miss, so the caller reparses and rebuilds.
        """
        path = self.tree_path(digest)
        if not path.is_file():
            with self._lock:
                self._tree_misses += 1
            return None
        try:
            faults.trip("corrupt_read", key=digest, site="snapshot")
        except FaultInjectedError:
            # Injected read corruption: report a miss (caller reparses) but
            # leave the healthy file alone, unlike organic damage below.
            with self._lock:
                self._tree_misses += 1
            return None
        try:
            with _trace.span("snapshot.load", digest=digest[:12]):
                tree = decode_snapshot(
                    path, expected_digest=digest, matrix_cache_bytes=matrix_cache_bytes
                )
        except SnapshotError:
            self._drop_invalid(path)
            with self._lock:
                self._tree_misses += 1
            return None
        with self._lock:
            self._tree_hits += 1
        self._touch(path)
        return tree

    def store_tree(self, tree: Tree, digest: str) -> Path:
        """Serialise ``tree`` under ``digest``; returns the file written."""
        path = self.tree_path(digest)
        self._write_atomic(path, encode_snapshot(tree, digest))
        with self._lock:
            self._tree_stores += 1
        self._enforce_budget()
        return path

    # ---------------------------------------------------------------- answers
    def load_answers(
        self, digest: str, plan: str, variables: Sequence[str], engine: str
    ) -> Optional[frozenset]:
        """Return the spilled answer set, or ``None`` on miss or damage."""
        path = self.answer_path(digest, plan, variables, engine)
        try:
            faults.trip("corrupt_read", key=digest, site="snapshot")
            blob = path.read_bytes()
        except FaultInjectedError:
            # Injected corruption: miss without unlinking the healthy file.
            with self._lock:
                self._answer_misses += 1
            return None
        except OSError:
            with self._lock:
                self._answer_misses += 1
            return None
        try:
            payload = pickle.loads(blob)
            if not isinstance(payload, dict):
                raise ValueError("answer payload is not a dict")
            if payload.get("format") != FORMAT_VERSION:
                raise ValueError("answer format version mismatch")
            if (
                payload.get("digest") != digest
                or payload.get("plan") != plan
                or tuple(payload.get("variables", ())) != tuple(variables)
                or payload.get("engine") != engine
            ):
                raise ValueError("answer identity mismatch")
            answers = payload["answers"]
            if not isinstance(answers, frozenset):
                raise ValueError("answer payload holds no frozenset")
        except Exception:
            self._drop_invalid(path)
            with self._lock:
                self._answer_misses += 1
            return None
        with self._lock:
            self._answer_hits += 1
        self._touch(path)
        return answers

    def store_answers(
        self,
        digest: str,
        plan: str,
        variables: Sequence[str],
        engine: str,
        answers: frozenset,
    ) -> Path:
        """Spill one answer set; returns the file written."""
        path = self.answer_path(digest, plan, variables, engine)
        payload = pickle.dumps(
            {
                "format": FORMAT_VERSION,
                "digest": digest,
                "plan": plan,
                "variables": list(variables),
                "engine": engine,
                "answers": answers,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._write_atomic(path, payload)
        with self._lock:
            self._answer_stores += 1
        self._enforce_budget()
        return path

    # ------------------------------------------------------------ housekeeping
    def _write_atomic(self, path: Path, payload: bytes) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        # Unique per writer thread *and* process: shard workers share the
        # directory, and concurrent stores of one digest must not rename
        # each other's temp file away mid-replace.
        temporary = path.with_suffix(
            ".tmp-%d-%d" % (os.getpid(), threading.get_ident())
        )
        temporary.write_bytes(payload)
        os.replace(temporary, path)

    def _drop_invalid(self, path: Path) -> None:
        with self._lock:
            self._invalid += 1
        try:
            path.unlink()
        except OSError:
            pass

    def _touch(self, path: Path) -> None:
        """Refresh access+modification time so GC is least-recently-used."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _artefacts(self) -> list[Path]:
        try:
            return [
                entry
                for entry in self.directory.iterdir()
                if entry.suffix in _SUFFIXES
            ]
        except OSError:
            return []

    def _enforce_budget(self) -> None:
        if self.max_bytes is not None:
            self.gc(self.max_bytes)

    def gc(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used artefacts down to ``max_bytes``.

        ``max_bytes`` defaults to the store's configured budget; with both
        unset this is a no-op.  Returns how many files were removed.
        Ordering is by access time (``st_atime``; hits touch their file), so
        hot snapshots survive cold ones regardless of build order.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        if budget is None:
            return 0
        entries = []
        total = 0
        for path in self._artefacts():
            try:
                status = path.stat()
            except OSError:
                continue
            entries.append((status.st_atime, status.st_mtime, status.st_size, path))
            total += status.st_size
        entries.sort()  # oldest access first = least recently used
        removed = 0
        for _, _, size, path in entries:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            with self._lock:
                self._evictions += 1
        return removed

    def clear(self) -> int:
        """Delete every artefact file; returns how many were removed."""
        removed = 0
        for path in self._artefacts():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -------------------------------------------------------------- inspection
    def total_bytes(self) -> int:
        """Current on-disk footprint across snapshots and spilled answers."""
        total = 0
        for path in self._artefacts():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def file_counts(self) -> dict[str, int]:
        """How many artefacts of each kind are on disk."""
        counts = {"trees": 0, "answers": 0}
        for path in self._artefacts():
            if path.suffix == TREE_SUFFIX:
                counts["trees"] += 1
            else:
                counts["answers"] += 1
        return counts

    def __len__(self) -> int:
        return len(self._artefacts())

    @property
    def stats(self) -> SnapshotStats:
        """Snapshot of this instance's counters."""
        with self._lock:
            return SnapshotStats(
                tree_hits=self._tree_hits,
                tree_misses=self._tree_misses,
                tree_stores=self._tree_stores,
                answer_hits=self._answer_hits,
                answer_misses=self._answer_misses,
                answer_stores=self._answer_stores,
                invalid=self._invalid,
                evictions=self._evictions,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotStore({str(self.directory)!r}, max_bytes={self.max_bytes})"
