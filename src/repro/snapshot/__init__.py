"""repro.snapshot — the on-disk, content-addressed columnar snapshot store.

Compiling a document is the expensive half of every cold corpus start:
parse the XML, number the tree, build the hot axis relations.  This package
persists that work as *snapshots* — versioned files holding the tree's
struct arrays plus a label dictionary and the packed-bitset axis relations,
laid out so :func:`numpy.memmap` loads them in O(1) without parsing
(:mod:`repro.snapshot.codec`) — and *spills answer sets* addressed by
``(document digest, plan key, engine)``, so a warm start skips the first
evaluation too (:mod:`repro.snapshot.store`).

The store plugs into the stack through ``DocumentStore(snapshot_dir=...)``
(preferring snapshots over XML sources with digest revalidation),
``Session(snapshot_dir=...)`` / ``ExecutionPolicy.snapshot_dir`` /
``REPRO_SNAPSHOT_DIR`` under the usual precedence, and the
``repro-xpath corpus snapshot build/stats/gc`` CLI group.
"""

from repro.snapshot.codec import (
    DEFAULT_SNAPSHOT_AXES,
    FORMAT_VERSION,
    MAGIC,
    SnapshotError,
    decode_snapshot,
    encode_snapshot,
    read_header,
)
from repro.snapshot.store import (
    ANSWER_SUFFIX,
    TREE_SUFFIX,
    SnapshotStats,
    SnapshotStore,
)

__all__ = [
    "ANSWER_SUFFIX",
    "DEFAULT_SNAPSHOT_AXES",
    "FORMAT_VERSION",
    "MAGIC",
    "SnapshotError",
    "SnapshotStats",
    "SnapshotStore",
    "TREE_SUFFIX",
    "decode_snapshot",
    "encode_snapshot",
    "read_header",
]
