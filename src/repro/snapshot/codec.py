"""The columnar snapshot file format: encode once, ``np.memmap`` forever.

A snapshot is the compiled form of one document: the preorder-indexed
struct-of-arrays representation of its :class:`repro.trees.tree.Tree`
(label ids, parent, depth, post, subtree extents) plus a label dictionary,
with the hot packed-bitset axis relations serialised alongside (a packed
relation is ``n²/8`` bytes — ~32 KiB at 512 nodes).  The layout is designed
for O(1) loads: a fixed prefix, one JSON header describing every array
(dtype, offset, shape), then a 64-byte-aligned little-endian body that
:func:`numpy.memmap` maps without parsing or copying.  Reconstructing the
:class:`Tree` wrapper is a single O(n) pass over the mapped columns
(:meth:`repro.trees.tree.Tree.from_columns`); the mapped relation words are
adopted verbatim as :class:`repro.pplbin.bitmatrix.BitsetRelation` rows.

On-disk layout (format version 1)::

    bytes 0..5    magic  b"RXSNAP"
    bytes 6..7    format version  (uint16, little endian)
    bytes 8..11   header length H (uint32, little endian)
    bytes 12..12+H JSON header (utf-8)
    ...padding to a 64-byte boundary...
    body          the arrays, each at a 64-byte-aligned offset

The header carries the source digest *inside* the file, so a snapshot can
never be served for a source it was not built from — the PlanCache identity
rule applied to documents.  ``pre`` is not stored: preorder ids are the node
ids themselves (``pre[u] == u`` by construction).

Everything here raises :class:`SnapshotError` on any malformed input;
the store layer (:mod:`repro.snapshot.store`) turns that into
delete-and-rebuild, never a crash or a wrong answer.
"""

from __future__ import annotations

import io
import json
import struct
import sys
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro._config import UNSET as _UNSET
from repro.errors import ReproError
from repro.trees.axes import Axis, axis_relation
from repro.trees.tree import Tree

#: Bump when the layout (prefix, header schema or column set) changes
#: incompatibly; old files then fail validation and are rebuilt.
FORMAT_VERSION = 1

MAGIC = b"RXSNAP"
_PREFIX = struct.Struct("<6sHI")
_ALIGN = 64

#: The axis relations serialised into every snapshot: the paper's vertical
#: navigation core, which every PPLbin plan touches first.  Sibling and
#: derived axes stay demand-built — they are cheap closures over these.
DEFAULT_SNAPSHOT_AXES: tuple[Axis, ...] = (
    Axis.CHILD,
    Axis.PARENT,
    Axis.DESCENDANT,
    Axis.ANCESTOR,
)

_COLUMN_DTYPES = {
    "label_ids": "<u4",
    "parent": "<i8",
    "depth": "<i4",
    "post": "<i8",
    "subtree_end": "<i8",
}


class SnapshotError(ReproError):
    """Raised for malformed, truncated or mismatched snapshot files."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ----------------------------------------------------------------- encoding
def encode_snapshot(
    tree: Tree,
    digest: str,
    *,
    relation_axes: tuple[Axis, ...] = DEFAULT_SNAPSHOT_AXES,
) -> bytes:
    """Serialise ``tree`` into the columnar snapshot format.

    ``digest`` is the content address of the *source* the tree was parsed
    from; it is stored inside the header so loads can revalidate identity.
    """
    size = tree.size
    label_table: list[str] = []
    label_ids_of: dict[str, int] = {}
    label_ids = np.empty(size, dtype=np.uint32)
    for uid, label in enumerate(tree.labels):
        index = label_ids_of.get(label)
        if index is None:
            index = len(label_table)
            label_ids_of[label] = index
            label_table.append(label)
        label_ids[uid] = index

    parent = np.fromiter(
        (-1 if p is None else p for p in tree.parent), dtype=np.int64, count=size
    )
    columns = {
        "label_ids": label_ids,
        "parent": parent,
        "depth": np.asarray(tree.depth, dtype=np.int32),
        "post": np.asarray(tree.post, dtype=np.int64),
        "subtree_end": np.asarray(tree.subtree_end, dtype=np.int64),
    }
    relations = {
        axis.value: np.ascontiguousarray(
            axis_relation(tree, axis, "bitset").to_bitset().words
        )
        for axis in relation_axes
    }

    # Lay the body out: every array at a 64-byte-aligned offset (relative
    # to the body start, which is itself aligned), so memmap views land on
    # cache-line boundaries.  Columns and relations live in separate header
    # maps — "parent" names both a column and an axis.
    column_meta: dict[str, dict] = {}
    relation_meta: dict[str, dict] = {}
    body_parts: list[tuple[int, np.ndarray]] = []
    cursor = 0
    for meta, table, dtype_of in (
        (column_meta, columns, lambda name: _COLUMN_DTYPES[name]),
        (relation_meta, relations, lambda name: "<u8"),
    ):
        for name, array in table.items():
            cursor = _align(cursor)
            dtype = dtype_of(name)
            meta[name] = {"dtype": dtype, "offset": cursor, "shape": list(array.shape)}
            part = np.ascontiguousarray(array.astype(dtype, copy=False))
            body_parts.append((cursor, part))
            cursor += part.nbytes

    header = {
        "format": FORMAT_VERSION,
        "digest": digest,
        "size": size,
        "byteorder": "little",
        "labels": label_table,
        "columns": column_meta,
        "relations": relation_meta,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    body_start = _align(_PREFIX.size + len(header_bytes))

    out = io.BytesIO()
    out.write(_PREFIX.pack(MAGIC, FORMAT_VERSION, len(header_bytes)))
    out.write(header_bytes)
    out.write(b"\x00" * (body_start - _PREFIX.size - len(header_bytes)))
    position = 0
    for offset, part in body_parts:
        out.write(b"\x00" * (offset - position))
        out.write(part.tobytes())
        position = offset + part.nbytes
    return out.getvalue()


# ----------------------------------------------------------------- decoding
def read_header(path: Union[str, Path]) -> dict:
    """Parse and validate a snapshot file's header (not the body).

    Raises :class:`SnapshotError` for anything malformed.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            prefix = handle.read(_PREFIX.size)
            if len(prefix) < _PREFIX.size:
                raise SnapshotError(f"snapshot {path.name}: truncated prefix")
            magic, version, header_length = _PREFIX.unpack(prefix)
            if magic != MAGIC:
                raise SnapshotError(f"snapshot {path.name}: bad magic")
            if version != FORMAT_VERSION:
                raise SnapshotError(
                    f"snapshot {path.name}: format version {version} "
                    f"(expected {FORMAT_VERSION})"
                )
            header_bytes = handle.read(header_length)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if len(header_bytes) < header_length:
        raise SnapshotError(f"snapshot {path.name}: truncated header")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise SnapshotError(f"snapshot {path.name}: header is not JSON") from exc
    if not isinstance(header, dict) or header.get("format") != FORMAT_VERSION:
        raise SnapshotError(f"snapshot {path.name}: header format mismatch")
    if header.get("byteorder") != sys.byteorder:
        raise SnapshotError(f"snapshot {path.name}: foreign byte order")
    return header


def _mapped_array(
    mapped: np.ndarray, body_start: int, total: int, descriptor: dict, name: str
) -> np.ndarray:
    try:
        dtype = np.dtype(descriptor["dtype"])
        shape = tuple(int(extent) for extent in descriptor["shape"])
        offset = body_start + int(descriptor["offset"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"snapshot array {name}: bad descriptor") from exc
    if any(extent < 0 for extent in shape):
        raise SnapshotError(f"snapshot array {name}: negative extent")
    nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else 0
    if offset < 0 or offset + nbytes > total:
        raise SnapshotError(f"snapshot array {name}: body out of range")
    return mapped[offset : offset + nbytes].view(dtype).reshape(shape)


def decode_snapshot(
    path: Union[str, Path],
    *,
    expected_digest: Optional[str] = None,
    matrix_cache_bytes=_UNSET,
) -> Tree:
    """Load a snapshot into a :class:`Tree` by memory-mapping its body.

    The packed axis relations in the file are seeded into the tree's matrix
    cache under the bitset kernel's token, so the Theorem 2 evaluator finds
    them without rebuilding.  ``expected_digest`` (when given) must match
    the digest recorded inside the file — the stale-source guard.

    Raises
    ------
    SnapshotError
        For any malformed, truncated, version-skewed or mismatched file.
        Never returns a structurally inconsistent tree: the columns are
        validated (vectorised, O(n)) before the wrapper is built.
    """
    path = Path(path)
    header = read_header(path)
    if expected_digest is not None and header.get("digest") != expected_digest:
        raise SnapshotError(
            f"snapshot {path.name}: stale digest "
            f"(file {str(header.get('digest'))[:12]}…, source {expected_digest[:12]}…)"
        )
    size = header.get("size")
    labels_table = header.get("labels")
    column_meta = header.get("columns")
    relation_meta = header.get("relations")
    if (
        not isinstance(size, int)
        or size < 1
        or not isinstance(labels_table, list)
        or not isinstance(column_meta, dict)
        or not isinstance(relation_meta, dict)
    ):
        raise SnapshotError(f"snapshot {path.name}: malformed header fields")
    try:
        mapped = np.memmap(path, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"cannot map snapshot {path}: {exc}") from exc
    total = mapped.shape[0]
    # The body starts after the header, aligned; take the header length from
    # the prefix bytes (not a re-serialisation, which could differ).
    (header_length,) = struct.unpack("<I", bytes(mapped[len(MAGIC) + 2 : _PREFIX.size]))
    body_start = _align(_PREFIX.size + header_length)

    columns = {}
    for name in _COLUMN_DTYPES:
        descriptor = column_meta.get(name)
        if not isinstance(descriptor, dict):
            raise SnapshotError(f"snapshot {path.name}: missing column {name}")
        array = _mapped_array(mapped, body_start, total, descriptor, name)
        if array.shape != (size,):
            raise SnapshotError(f"snapshot {path.name}: column {name} has wrong shape")
        columns[name] = array

    # Structural validation, vectorised: random body corruption overwhelmingly
    # fails one of these instead of producing a silently wrong tree.
    label_ids = columns["label_ids"]
    parent = columns["parent"]
    subtree_end = columns["subtree_end"]
    if label_ids.size and int(label_ids.max()) >= len(labels_table):
        raise SnapshotError(f"snapshot {path.name}: label id out of dictionary range")
    if int(parent[0]) != -1:
        raise SnapshotError(f"snapshot {path.name}: root must be parentless")
    if size > 1:
        tail = parent[1:]
        if int(tail.min()) < 0 or bool(
            (tail >= np.arange(1, size, dtype=np.int64)).any()
        ):
            raise SnapshotError(f"snapshot {path.name}: parent ids not preorder-consistent")
    nodes = np.arange(size, dtype=np.int64)
    if bool((subtree_end < nodes).any()) or int(subtree_end.max()) >= size:
        raise SnapshotError(f"snapshot {path.name}: subtree extents out of range")

    if not all(isinstance(label, str) for label in labels_table):
        raise SnapshotError(f"snapshot {path.name}: label dictionary is not all strings")
    labels = [labels_table[index] for index in label_ids.tolist()]
    parent_list: list = parent.tolist()
    parent_list[0] = None
    tree = Tree.from_columns(
        labels=labels,
        parent=parent_list,
        depth=columns["depth"].tolist(),
        post=columns["post"].tolist(),
        subtree_end=columns["subtree_end"].tolist(),
        matrix_cache_bytes=matrix_cache_bytes,
    )

    # Seed the packed relations straight off the mapping — no copy, no
    # rebuild; the OS pages them in on first touch.
    from repro.pplbin.bitmatrix import BitsetRelation, get_kernel

    token = get_kernel("bitset").cache_token
    words_per_row = (size + 63) // 64
    cache = tree.matrix_cache()
    for name, descriptor in relation_meta.items():
        if not isinstance(descriptor, dict):
            raise SnapshotError(f"snapshot {path.name}: malformed relation {name!r}")
        try:
            axis = Axis(name)
        except ValueError as exc:
            raise SnapshotError(f"snapshot {path.name}: unknown relation axis {name!r}") from exc
        words = _mapped_array(mapped, body_start, total, descriptor, name)
        if words.shape != (size, words_per_row):
            raise SnapshotError(f"snapshot {path.name}: relation {name} has wrong shape")
        cache[("axis-rel", axis, token)] = BitsetRelation(size, words)
    return tree
