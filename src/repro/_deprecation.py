"""Shared machinery for the deprecation-shimmed legacy entry points.

PR 5 consolidated the three parallel front doors — per-document
:class:`repro.api.Document` calls, the batch :class:`repro.corpus`
executor and the async :class:`repro.serve` server — behind one
:class:`repro.session.Session`.  Release 1.5.0 then *removed* the seed-era
shims (``repro.answer``, the legacy ``compile_query``, ``PPLEngine``) and
the construction warnings on ``CorpusExecutor``/``CorpusServer``.  What
remains shimmed is the tail: direct :class:`Document` construction,
``answer_batch`` and the ``as_document`` adoption path still work but emit
a :class:`DeprecationWarning` pointing at the Session equivalent.

The subtlety this module exists for: the Session and the document store
build those same objects *internally* — a store materialising a
:class:`Document` — and internal construction must stay silent, both to
keep the warning signal meaningful and so the ``examples/`` CI job can run
the ported code paths under ``-W error::DeprecationWarning``.  Internal
call sites wrap construction in :func:`suppress_deprecations`; everything
else goes through :func:`warn_deprecated`, which checks the (thread-local)
suppression flag.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager

_state = threading.local()


def _suppressed() -> bool:
    return getattr(_state, "depth", 0) > 0


@contextmanager
def suppress_deprecations():
    """Silence :func:`warn_deprecated` on this thread for the duration.

    Used by the library's own internals (the store loading a document, a
    session building its executor/server) so that only *user* code touching
    a legacy entry point directly sees the warning.
    """
    _state.depth = getattr(_state, "depth", 0) + 1
    try:
        yield
    finally:
        _state.depth -= 1


def warn_deprecated(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the standard legacy-entry-point warning (unless suppressed).

    ``old`` and ``new`` are human-readable call forms, e.g.
    ``("answer_batch(...)", "Session.query_corpus(...)")``.  The message
    names the removal horizon documented in the README's migration table.
    """
    if _suppressed():
        return
    warnings.warn(
        f"{old} is deprecated and will be removed in a future release "
        "(1.5.0 already removed the seed-era entry points); "
        f"use {new} instead (see the README 'Session API' migration table)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
