"""Span-driven calibration of the kernel cost model.

The adaptive kernel in :mod:`repro.pplbin.bitmatrix` picks a composition
algorithm from hand-calibrated nanosecond constants.  This module closes
the loop: every ``kernel.compose`` span the tracer records carries the
chosen representation, the matrix size and the operand populations, so
observed durations can be regressed against the cost model's own
predictors and the constants re-fitted for the machine actually running
the workload.

Pipeline:

1. :func:`samples_from_traces` extracts ``kernel.compose`` samples from
   recorded span trees (the trace ring, ``QueryReport.trace``, or a
   controlled run);
2. samples are grouped by ``(representation, n, density bucket)`` and
   reduced to per-group medians (:func:`group_samples`) so one noisy
   outlier cannot steer the fit;
3. :func:`fit_constants` least-squares fits each representation's
   constants against the group medians — ``dense`` fits
   ``BLAS_NS_PER_CELL`` on ``n^3``, ``bitset`` fits ``ROW_OVERHEAD_NS`` +
   ``WORD_NS`` on ``(n, left_nnz * words(n))``, ``sparse`` fits
   ``SPARSE_ELEMENT_NS`` on the touched-entry count;
4. :func:`calibrate` runs a controlled compose workload under tracing and
   returns a JSON-serialisable profile; :func:`save_profile` persists it.

``repro.pplbin.bitmatrix`` loads a persisted profile via
``REPRO_COST_PROFILE`` (or :func:`repro.pplbin.bitmatrix.load_cost_profile`),
after which ``estimate_compose_ns``/``choose_compose`` use the fitted
constants.  The ``repro-xpath obs calibrate`` CLI wraps steps 1–4.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import trace as _trace

__all__ = [
    "COMPOSE_SPAN",
    "PROFILE_FORMAT",
    "samples_from_traces",
    "density_bucket",
    "group_samples",
    "fit_constants",
    "calibrate",
    "build_profile",
    "save_profile",
    "load_profile",
]

#: Span name the evaluator and the calibration harness both emit.
COMPOSE_SPAN = "kernel.compose"

#: Version stamp of the persisted profile JSON.
PROFILE_FORMAT = 1

#: Which cost-model constants each representation's fit produces.
_FITTED_CONSTANTS = {
    "dense": ("BLAS_NS_PER_CELL",),
    "bitset": ("ROW_OVERHEAD_NS", "WORD_NS"),
    "sparse": ("SPARSE_ELEMENT_NS",),
}

#: Minimum group-median points before a representation's fit is trusted.
_MIN_POINTS = 3


# ------------------------------------------------------------- extraction
def samples_from_traces(trees: Iterable[dict]) -> List[dict]:
    """Extract ``kernel.compose`` samples from span trees.

    A usable span carries ``representation``, ``n`` and ``left_nnz`` attrs
    (the evaluator sets them whenever tracing or sampling is active);
    spans predating the attribute enrichment are skipped, not errors.
    """
    samples: List[dict] = []
    pending = list(trees)
    while pending:
        node = pending.pop()
        if node is None:
            continue
        attrs = node.get("attrs", {})
        if (
            node.get("name") == COMPOSE_SPAN
            and "representation" in attrs
            and "n" in attrs
            and "left_nnz" in attrs
        ):
            samples.append(
                {
                    "representation": attrs["representation"],
                    "n": int(attrs["n"]),
                    "left_nnz": int(attrs["left_nnz"]),
                    "right_nnz": int(attrs.get("right_nnz", attrs["left_nnz"])),
                    "seconds": float(node["seconds"]),
                }
            )
        pending.extend(node.get("children", ()))
    return samples


def density_bucket(n: int, nnz: int) -> int:
    """Log2 bucket of successors-per-node — the density key of a sample."""
    if n <= 0:
        return 0
    per_node = max(nnz / n, 2.0 ** -10)
    return int(round(math.log2(per_node)))


def group_samples(samples: Sequence[dict]) -> List[dict]:
    """Median-reduce samples keyed by ``(representation, n, density bucket)``."""
    groups: Dict[Tuple[str, int, int], List[dict]] = {}
    for sample in samples:
        key = (
            sample["representation"],
            sample["n"],
            density_bucket(sample["n"], sample["left_nnz"]),
        )
        groups.setdefault(key, []).append(sample)
    reduced = []
    for (representation, n, bucket), members in sorted(groups.items()):
        reduced.append(
            {
                "representation": representation,
                "n": n,
                "density_bucket": bucket,
                "samples": len(members),
                "median_seconds": statistics.median(m["seconds"] for m in members),
                "left_nnz": int(statistics.median(m["left_nnz"] for m in members)),
                "right_nnz": int(statistics.median(m["right_nnz"] for m in members)),
            }
        )
    return reduced


# ---------------------------------------------------------------- fitting
def _words(n: int) -> int:
    return (n + 63) // 64


def _fit_origin(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """One-parameter least squares through the origin: y ≈ c·x."""
    sxx = sum(x * x for x in xs)
    if sxx <= 0.0:
        return None
    c = sum(x * y for x, y in zip(xs, ys)) / sxx
    return c if c > 0.0 else None


def _fit_two(
    x1s: Sequence[float], x2s: Sequence[float], ys: Sequence[float]
) -> Optional[Tuple[float, float]]:
    """Two-parameter least squares through the origin: y ≈ a·x1 + b·x2."""
    s11 = sum(x * x for x in x1s)
    s22 = sum(x * x for x in x2s)
    s12 = sum(x1 * x2 for x1, x2 in zip(x1s, x2s))
    s1y = sum(x * y for x, y in zip(x1s, ys))
    s2y = sum(x * y for x, y in zip(x2s, ys))
    det = s11 * s22 - s12 * s12
    if abs(det) < 1e-12 * max(s11 * s22, 1.0):
        return None
    a = (s1y * s22 - s2y * s12) / det
    b = (s11 * s2y - s12 * s1y) / det
    if a <= 0.0 or b <= 0.0:
        return None
    return a, b


def fit_constants(groups: Sequence[dict]) -> Dict[str, float]:
    """Fit per-representation ns constants from group medians.

    Returns only the constants a fit produced — representations with too
    few points (or a degenerate/negative fit) keep their built-in values.
    """
    constants: Dict[str, float] = {}
    by_rep: Dict[str, List[dict]] = {}
    for group in groups:
        by_rep.setdefault(group["representation"], []).append(group)

    dense = by_rep.get("dense", [])
    if len(dense) >= _MIN_POINTS:
        xs = [float(g["n"]) ** 3 for g in dense]
        ys = [g["median_seconds"] * 1e9 for g in dense]
        c = _fit_origin(xs, ys)
        if c is not None:
            constants["BLAS_NS_PER_CELL"] = c

    bitset = by_rep.get("bitset", [])
    if len(bitset) >= _MIN_POINTS:
        x1s = [float(g["n"]) for g in bitset]
        x2s = [float(g["left_nnz"] * _words(g["n"])) for g in bitset]
        ys = [g["median_seconds"] * 1e9 for g in bitset]
        fit = _fit_two(x1s, x2s, ys)
        if fit is not None:
            constants["ROW_OVERHEAD_NS"], constants["WORD_NS"] = fit
        else:
            # Collinear densities: fall back to fitting the word term alone.
            c = _fit_origin(x2s, ys)
            if c is not None:
                constants["WORD_NS"] = c

    sparse = by_rep.get("sparse", [])
    if len(sparse) >= _MIN_POINTS:
        xs = [
            g["left_nnz"] + (g["left_nnz"] * g["right_nnz"] / g["n"] if g["n"] else 0.0)
            for g in sparse
        ]
        ys = [g["median_seconds"] * 1e9 for g in sparse]
        c = _fit_origin(xs, ys)
        if c is not None:
            constants["SPARSE_ELEMENT_NS"] = c

    return constants


# ------------------------------------------------------------ controlled run
def _random_relation(size: int, per_node: float, seed: int):
    import numpy as np

    from repro.pplbin.bitmatrix import relation_from_matrix

    rng = np.random.default_rng(seed)
    density = min(max(per_node / size, 0.0), 1.0)
    matrix = rng.random((size, size)) < density
    return relation_from_matrix(matrix)


def record_compose(kernel, representation: str, left, right) -> None:
    """Run one compose under a fully-attributed ``kernel.compose`` span."""
    with _trace.span(
        COMPOSE_SPAN,
        kernel=kernel.name,
        representation=representation,
        n=left.size,
        left_nnz=left.nnz(),
        right_nnz=right.nnz(),
    ):
        kernel.compose(left, right)


def calibrate(
    sizes: Sequence[int] = (96, 192, 320),
    per_node_densities: Sequence[float] = (2.0, 8.0, 32.0, 128.0),
    repeats: int = 3,
    seed: int = 0,
    representations: Sequence[str] = ("dense", "bitset", "sparse"),
) -> dict:
    """Run a controlled compose workload and fit a calibration profile.

    Each (representation, size, density) cell composes freshly generated
    random relations ``repeats`` times with tracing temporarily enabled;
    samples are read back out of the recorded span trees — the same
    extraction path production traces go through — then grouped and
    fitted.  Returns the profile dict (see :func:`build_profile`).
    """
    from repro.pplbin.bitmatrix import get_kernel

    samples: List[dict] = []
    previous = _trace.set_tracing(True)
    try:
        _trace.take_last_trace()
        for size in sizes:
            for per_node in per_node_densities:
                if per_node > size:
                    continue
                left = _random_relation(size, per_node, seed=seed + size)
                right = _random_relation(size, per_node, seed=seed + size + 1)
                for representation in representations:
                    kernel = get_kernel(representation)
                    left_rep = kernel.coerce(left)
                    right_rep = kernel.coerce(right)
                    # Warm one compose so numpy's first-call setup is not fitted.
                    kernel.compose(left_rep, right_rep)
                    for _ in range(max(1, repeats)):
                        record_compose(kernel, representation, left_rep, right_rep)
                        tree = _trace.take_last_trace()
                        if tree is not None:
                            samples.extend(samples_from_traces([tree]))
    finally:
        _trace.set_tracing(previous)
    return build_profile(samples)


# ---------------------------------------------------------------- profiles
def build_profile(samples: Sequence[dict]) -> dict:
    """Group, fit, and wrap samples into the persisted profile shape."""
    groups = group_samples(samples)
    constants = fit_constants(groups)
    return {
        "format": PROFILE_FORMAT,
        "fitted_at": time.time(),
        "samples": len(samples),
        "groups": groups,
        "constants": constants,
    }


def save_profile(path: str, profile: dict) -> str:
    """Atomically persist a profile as JSON; returns the path."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(profile, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_profile(path: str) -> dict:
    """Load a persisted profile (raises on unreadable/invalid JSON)."""
    with open(path, "r", encoding="utf-8") as handle:
        profile = json.load(handle)
    if not isinstance(profile, dict) or "constants" not in profile:
        raise ValueError(f"not a calibration profile: {path!r}")
    return profile
