"""Span tracer: per-query span trees with near-zero cost when disabled.

Tracing follows the process-global pattern the kernel default already uses
(`repro.pplbin.bitmatrix.set_default_kernel` + ``REPRO_KERNEL``): it is off
unless ``REPRO_TRACE`` is truthy at import or :func:`set_tracing` flips it
on (a :class:`repro.session.ExecutionPolicy` with ``trace=True`` does the
latter).  When disabled, :func:`span` returns a shared no-op context
manager — one global load, one call, no allocation — so instrumentation can
stay inline on hot paths.

Between "off" and "everything" sits **sampled always-on tracing**:
:func:`set_trace_sample` (``ExecutionPolicy.trace_sample`` /
``REPRO_TRACE_SAMPLE``) records spans for *every* query but makes a
probabilistic head-sampling decision at each trace root.  Sampled traces
are published to the bounded in-memory ring (:func:`drain_finished` /
``/traces.ndjson``); unsampled traces still land in the thread's
``last trace`` slot, so the slow-query log can attach the full span tree
as an exemplar even for queries the sampler skipped.  ``trace=True``
remains "sample everything".

Spans carry ``trace_id``/``span_id``/``parent_id``, monotonic
(`time.perf_counter`) start/end timestamps plus a wall-clock anchor, and
free-form attributes.  The span stack is thread-local; a span opened with
no parent starts a new trace, and finishing it publishes the tree to the
thread's ``last trace`` slot (picked up by ``Document.report``) and — when
the head-sampling decision kept it — to a bounded process-wide deque
drained by :func:`drain_finished` for NDJSON export.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "TRACE_ENV",
    "TRACE_SAMPLE_ENV",
    "enabled",
    "tracing_enabled",
    "sample_rate",
    "set_tracing",
    "set_trace_sample",
    "reset_thread",
    "span",
    "record_span",
    "Span",
    "last_trace",
    "take_last_trace",
    "drain_finished",
    "finished_traces",
    "trace_events",
    "render_events",
    "format_tree",
]

TRACE_ENV = "REPRO_TRACE"
TRACE_SAMPLE_ENV = "REPRO_TRACE_SAMPLE"

_TRUTHY = {"1", "true", "yes", "on"}


def _parse_sample(text: Optional[str]) -> float:
    if not text:
        return 0.0
    try:
        rate = float(text)
    except ValueError:
        return 0.0
    return min(max(rate, 0.0), 1.0)


_enabled = os.environ.get(TRACE_ENV, "").strip().lower() in _TRUTHY
_sample = _parse_sample(os.environ.get(TRACE_SAMPLE_ENV, "").strip())
#: Whether spans are being recorded at all — full tracing *or* sampling.
_active = _enabled or _sample > 0.0

_random = random.random
_ids = itertools.count(1)
_local = threading.local()
_finished: deque = deque(maxlen=256)
_finished_lock = threading.Lock()


def enabled() -> bool:
    """Whether spans are currently being recorded (process-wide).

    True under full tracing *and* under sampled tracing — sampling records
    every query's spans (the head-sampling decision only gates publication
    to the finished-trace ring).
    """
    return _active


def tracing_enabled() -> bool:
    """Whether *full* tracing is on (the sampling state is not included).

    Distinct from :func:`enabled` so code that must replicate the tracer's
    state across a process boundary (the corpus executor's shard-worker
    initargs) can ship the two knobs separately instead of collapsing a
    sampled parent into a fully-traced worker.
    """
    return _enabled


def sample_rate() -> float:
    """The current head-sampling rate in [0, 1] (0 unless sampling is on)."""
    return _sample


def set_tracing(value: bool) -> bool:
    """Enable or disable full tracing process-wide; returns the previous state."""
    global _enabled, _active
    previous = _enabled
    _enabled = bool(value)
    _active = _enabled or _sample > 0.0
    return previous


def set_trace_sample(rate: Optional[float]) -> float:
    """Set the head-sampling rate process-wide; returns the previous rate.

    ``None`` or 0 turns sampling off; rates are clamped to [0, 1].  A rate
    of 1.0 publishes every trace, like ``set_tracing(True)``.
    """
    global _sample, _active
    previous = _sample
    _sample = min(max(float(rate), 0.0), 1.0) if rate is not None else 0.0
    _active = _enabled or _sample > 0.0
    return previous


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def reset_thread() -> None:
    """Clear this thread's span stack and last-trace slot.

    Fork hygiene: a worker process forked while the parent had a span open
    inherits that thread's stack, so every span it records would nest under
    a phantom parent (and the root would never publish).  Worker
    initialisers call this before recording anything.
    """
    _local.stack = []
    _local.last = None


class Span:
    """One timed stage of a query; nests into a tree via the span stack."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "sampled",
        "started",
        "ended",
        "wall_started",
        "attrs",
        "children",
    )

    def __init__(self, name: str, trace_id: str, parent_id: Optional[str], **attrs: Any) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = f"{next(_ids):x}"
        self.parent_id = parent_id
        self.sampled = True
        self.started = time.perf_counter()
        self.ended: Optional[float] = None
        self.wall_started = time.time()
        self.attrs: Dict[str, Any] = attrs
        self.children: List["Span"] = []

    # -------------------------------------------------------------- control
    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.ended = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if self.parent_id is None:
            _publish(self)
        return False

    # ----------------------------------------------------------- inspection
    @property
    def seconds(self) -> float:
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    def to_dict(self) -> dict:
        """Nested span-tree dict (the shape stored on ``QueryReport.trace``)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "sampled": self.sampled,
            "start": self.started,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


def _sampled() -> bool:
    """The head-sampling decision for a new trace root."""
    return _enabled or _random() < _sample


def span(name: str, **attrs: Any):
    """Open a span named ``name``; a no-op unless tracing is enabled."""
    if not _active:
        return _NULL_SPAN
    stack = _stack()
    if stack:
        parent = stack[-1]
        child = Span(name, parent.trace_id, parent.span_id, **attrs)
        child.sampled = parent.sampled
        parent.children.append(child)
        return child
    root = Span(name, f"{os.getpid():x}-{next(_ids):x}", None, **attrs)
    root.sampled = _sampled()
    return root


def record_span(
    name: str,
    started: float,
    ended: float,
    children: Optional[List[dict]] = None,
    **attrs: Any,
) -> Optional[dict]:
    """Record an already-measured span without touching the span stack.

    The asyncio server measures its request lifecycle with explicit
    ``perf_counter`` readings (thread-local stacks interleave wrongly
    across ``await`` points); this publishes those readings as a finished
    trace.  ``children`` entries are ``{"name", "started", "ended"}``
    triples.  Returns the published tree dict, or ``None`` when disabled.
    """
    if not _active:
        return None
    root = Span(name, f"{os.getpid():x}-{next(_ids):x}", None, **attrs)
    root.sampled = _sampled()
    root.started = started
    root.ended = ended
    root.wall_started = time.time() - (time.perf_counter() - started)
    for child in children or ():
        node = Span(child["name"], root.trace_id, root.span_id, **child.get("attrs", {}))
        node.sampled = root.sampled
        node.started = child["started"]
        node.ended = child["ended"]
        node.wall_started = root.wall_started + (child["started"] - started)
        root.children.append(node)
    return _publish(root)


def _publish(root: Span) -> dict:
    tree = root.to_dict()
    _local.last = tree
    if root.sampled:
        with _finished_lock:
            _finished.append(tree)
    return tree


def last_trace() -> Optional[dict]:
    """The most recent completed trace on this thread (kept until replaced).

    Under sampled tracing this is set for *every* traced query, sampled or
    not — it is the tail-capture hook the slow-query log uses to attach
    span-tree exemplars to queries the head sampler skipped.
    """
    return getattr(_local, "last", None)


def take_last_trace() -> Optional[dict]:
    """Return and clear this thread's most recent completed trace."""
    tree = getattr(_local, "last", None)
    _local.last = None
    return tree


def drain_finished() -> List[dict]:
    """Drain the process-wide ring of sampled finished traces (all threads)."""
    with _finished_lock:
        trees = list(_finished)
        _finished.clear()
    return trees


def finished_traces(limit: Optional[int] = None) -> List[dict]:
    """Non-destructive snapshot of the sampled-trace ring, oldest first."""
    with _finished_lock:
        trees = list(_finished)
    if limit is not None:
        trees = trees[-limit:]
    return trees


# ------------------------------------------------------------------- export
def trace_events(tree: dict) -> Iterator[dict]:
    """Flatten a span tree into one event dict per span (parents first)."""
    pending = [tree]
    while pending:
        node = pending.pop(0)
        yield {
            "trace_id": node["trace_id"],
            "span_id": node["span_id"],
            "parent_id": node["parent_id"],
            "name": node["name"],
            "start": node["start"],
            "seconds": node["seconds"],
            "attrs": node["attrs"],
        }
        pending.extend(node["children"])


def render_events(trees: List[dict]) -> str:
    """NDJSON trace export: one JSON event per line, parents before children."""
    lines = []
    for tree in trees:
        for event in trace_events(tree):
            lines.append(json.dumps(event, sort_keys=True, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


def format_tree(tree: dict, indent: int = 0) -> str:
    """Human-readable indented rendering of a span tree (for the CLI)."""
    pad = "  " * indent
    attrs = ""
    if tree["attrs"]:
        attrs = "  " + " ".join(f"{key}={value}" for key, value in sorted(tree["attrs"].items()))
    line = f"{pad}{tree['name']}  {tree['seconds'] * 1e3:.3f}ms{attrs}"
    parts = [line]
    for child in tree["children"]:
        parts.append(format_tree(child, indent + 1))
    return "\n".join(parts)
