"""Stdlib-only HTTP exposition for metrics, health, slow queries, traces.

A scrape endpoint that needs no NDJSON client: a
:class:`ThreadingHTTPServer` on a daemon thread serving

- ``/metrics`` — the registry's Prometheus text format
  (``text/plain; version=0.0.4``),
- ``/healthz`` — liveness JSON (``{"status": "ok", ...}``),
- ``/slowlog.json`` — the slow-query log with span-tree exemplars,
- ``/traces.ndjson`` — drains the sampled-trace ring as NDJSON events
  (each scrape returns traces finished since the previous one),
- ``/cluster.json`` — cluster topology/placement/autotune status, when the
  owner is a :class:`repro.cluster.ClusterSupervisor` (404 otherwise).

Off by default; enabled by ``ServingPolicy.obs_port`` or the
``REPRO_OBS_PORT`` environment variable (``CorpusServer`` starts it, and
``repro-xpath serve run --obs-port`` exposes it on the CLI).  Port 0 asks
the kernel for a free port — read it back from :attr:`ObsHTTPServer.port`.
"""

from __future__ import annotations

import errno
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.errors import ObsPortInUseError
from repro.obs import trace as _trace
from repro.obs.slowlog import SlowQueryLog

__all__ = ["OBS_PORT_ENV", "ObsHTTPServer", "ObsPortInUseError"]

OBS_PORT_ENV = "REPRO_OBS_PORT"

#: Prometheus text exposition content type.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObsHTTPServer:
    """Serve observability read endpoints from a daemon thread.

    ``metrics_text`` is a zero-argument callable returning the Prometheus
    text body (so the owner can assemble fresh gauges per scrape);
    ``health`` optionally returns extra liveness fields; ``slowlog`` is the
    shared :class:`~repro.obs.slowlog.SlowQueryLog` ring, if any;
    ``cluster`` optionally returns the ``/cluster.json`` payload (a
    cluster supervisor passes its status snapshot — without it the path
    404s, so a plain server's endpoint is unchanged).
    """

    def __init__(
        self,
        metrics_text: Callable[[], str],
        *,
        slowlog: Optional[SlowQueryLog] = None,
        health: Optional[Callable[[], dict]] = None,
        cluster: Optional[Callable[[], dict]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._metrics_text = metrics_text
        self._slowlog = slowlog
        self._health = health
        self._cluster = cluster
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> int:
        """Bind and start serving; returns the bound port.

        Raises :class:`repro.errors.ObsPortInUseError` when the requested
        fixed port is already bound (``port=0`` can never collide).
        """
        if self._httpd is not None:
            return self.port
        owner = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, format, *args):  # noqa: A002 - stdlib signature
                pass  # scrapes must not spam stderr

            def do_GET(self) -> None:
                owner._handle(self)

        try:
            self._httpd = ThreadingHTTPServer(
                (self._host, self._requested_port), _Handler
            )
        except OSError as error:
            if error.errno == errno.EADDRINUSE:
                raise ObsPortInUseError(self._host, self._requested_port) from error
            raise
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def close(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsHTTPServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def host(self) -> str:
        return self._host

    # ------------------------------------------------------------- handlers
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self._metrics_text().encode("utf-8")
                self._respond(request, 200, METRICS_CONTENT_TYPE, body)
            elif path == "/healthz":
                payload = {"status": "ok"}
                if self._health is not None:
                    payload.update(self._health())
                body = (json.dumps(payload) + "\n").encode("utf-8")
                self._respond(request, 200, "application/json", body)
            elif path == "/slowlog.json":
                payload = (
                    self._slowlog.to_dict()
                    if self._slowlog is not None
                    else {"threshold": None, "size": 0, "dropped": 0, "entries": []}
                )
                body = (json.dumps(payload, default=str) + "\n").encode("utf-8")
                self._respond(request, 200, "application/json", body)
            elif path == "/traces.ndjson":
                body = _trace.render_events(_trace.drain_finished()).encode("utf-8")
                self._respond(request, 200, "application/x-ndjson", body)
            elif path == "/cluster.json" and self._cluster is not None:
                body = (json.dumps(self._cluster()) + "\n").encode("utf-8")
                self._respond(request, 200, "application/json", body)
            else:
                body = b"not found\n"
                self._respond(request, 404, "text/plain", body)
        except Exception as error:  # a scrape must never kill the thread
            body = (json.dumps({"error": str(error)}) + "\n").encode("utf-8")
            try:
                self._respond(request, 500, "application/json", body)
            except OSError:
                pass  # client went away mid-response

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler, status: int, content_type: str, body: bytes
    ) -> None:
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)
