"""Metrics primitives: labelled counters, gauges, and mergeable histograms.

The registry replaces the ad-hoc latency windows that used to live on
:class:`repro.serve.server.CorpusServer`.  Histograms use fixed log-spaced
bucket bounds so that two histograms observed in different processes can be
merged bucket-by-bucket — the processes corpus strategy ships shard-worker
histograms back to the parent exactly the way snapshot stats already
aggregate.

Metrics form **families**: every metric has a name, and a family may fan
out into series distinguished by a label set (``engine``, ``kernel``,
``representation``, ``strategy``, ``op``, ...).  The registry keys series
on ``(name, sorted(labels))`` so merges across the process-pool boundary
line up label-identical series and create disjoint ones for label sets the
parent has not observed yet.  A family's metric type (counter vs gauge vs
histogram) must be consistent across all of its series.

Everything here is plain-Python and picklable via ``to_dict``/``from_dict``
(worker processes return dicts over the pool boundary, never live objects).
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "quantile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_bounds",
    "series_key",
]

LabelItems = Tuple[Tuple[str, str], ...]


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of a **sorted** sequence.

    The nearest-rank definition: the smallest value with at least
    ``ceil(q * n)`` observations at or below it, i.e.
    ``values[ceil(q * n) - 1]``.  The previous in-line server computation
    indexed ``values[int(q * n)]`` which is off by one whenever ``q * n``
    is an integer — for a 20-element window ``int(0.95 * 20) == 19`` is the
    *maximum*, not the 95th percentile.
    """
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile fraction must be in (0, 1], got {q}")
    rank = math.ceil(q * len(values))
    return values[max(0, rank - 1)]


def default_latency_bounds() -> Tuple[float, ...]:
    """Log-spaced (factor ``sqrt(2)``) bucket upper bounds in seconds.

    Spans ~1 microsecond (``2**-20`` s) to 128 s in 55 buckets; observations
    above the last finite bound land in the implicit ``+Inf`` bucket.  The
    factor-``sqrt(2)`` spacing keeps histogram quantiles within one bucket
    (at worst ~41% relative error) of the exact sorted-window quantile,
    which is plenty for latency telemetry.
    """
    return tuple(2.0 ** (i / 2.0 - 20.0) for i in range(55))


def _label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    """Normalise a label mapping to the canonical sorted items tuple."""
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        value = labels[key]
        if not isinstance(key, str) or not isinstance(value, str):
            raise TypeError("metric labels must be str -> str")
        items.append((key, value))
    return tuple(items)


def _escape_help(text: str) -> str:
    """HELP text escaping per the Prometheus exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    """Label-value escaping: backslash, double quote, newline."""
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_string(items: LabelItems) -> str:
    return ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in items)


def series_key(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """The registry's stable transport key for one series of a family."""
    items = labels if isinstance(labels, tuple) else _label_items(labels)
    if not items:
        return name
    return f"{name}{{{_label_string(items)}}}"


class Counter:
    """A monotonically increasing counter (one series of a family)."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels: LabelItems = _label_items(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict:
        payload = {"type": "counter", "name": self.name, "help": self.help, "value": self._value}
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def merge(self, other: "Counter | dict") -> None:
        value = other["value"] if isinstance(other, dict) else other.value
        with self._lock:
            self._value += value


class Gauge:
    """A value that can go up and down (set to the latest reading)."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels: LabelItems = _label_items(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict:
        payload = {"type": "gauge", "name": self.name, "help": self.help, "value": self._value}
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def merge(self, other: "Gauge | dict") -> None:
        # Gauges are last-reading values; merging sums them (the only merge
        # the corpus layer needs is "in-flight across shards").
        value = other["value"] if isinstance(other, dict) else other.value
        with self._lock:
            self._value += value


class Histogram:
    """Fixed-bucket cumulative histogram with mergeable counts.

    ``bounds`` are the inclusive upper bounds of each bucket; an implicit
    final bucket catches everything above ``bounds[-1]``.  Two histograms
    merge iff their bounds are identical — by construction they are, since
    every histogram in the codebase uses :func:`default_latency_bounds`
    unless a test says otherwise.
    """

    __slots__ = (
        "name",
        "help",
        "labels",
        "bounds",
        "_counts",
        "_sum",
        "_count",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels: LabelItems = _label_items(labels)
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else default_latency_bounds()
        )
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self._counts = [0] * (len(self.bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------- recording
    def _bucket_index(self, value: float) -> int:
        return bisect.bisect_left(self.bounds, value)

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    # ----------------------------------------------------------- inspection
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    @property
    def counts(self) -> List[int]:
        return list(self._counts)

    def quantile(self, q: float) -> Optional[float]:
        """Histogram quantile: the upper bound of the nearest-rank bucket.

        Returns ``None`` on an empty histogram.  The answer is exact to
        within one bucket of the true nearest-rank quantile; values landing
        in the overflow bucket report the observed maximum.
        """
        if self._count == 0:
            return None
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile fraction must be in (0, 1], got {q}")
        rank = math.ceil(q * self._count)
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self._max
        return self._max  # pragma: no cover - unreachable

    # -------------------------------------------------------------- merging
    def merge(self, other: "Histogram | dict") -> None:
        if isinstance(other, Histogram):
            data = other.to_dict()
        else:
            data = other
        if tuple(data["bounds"]) != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        with self._lock:
            for index, bucket_count in enumerate(data["counts"]):
                self._counts[index] += bucket_count
            self._sum += data["sum"]
            self._count += data["count"]
            other_min = data.get("min")
            other_max = data.get("max")
            if other_min is not None:
                self._min = other_min if self._min is None else min(self._min, other_min)
            if other_max is not None:
                self._max = other_max if self._max is None else max(self._max, other_max)

    # ------------------------------------------------------------ transport
    def to_dict(self) -> dict:
        with self._lock:
            payload = {
                "type": "histogram",
                "name": self.name,
                "help": self.help,
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "min": self._min,
                "max": self._max,
            }
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls(
            data["name"],
            data.get("help", ""),
            bounds=data["bounds"],
            labels=data.get("labels"),
        )
        histogram.merge(data)
        return histogram

    def summary(self) -> dict:
        """Count/sum plus the standard latency quantiles, for stats dicts."""
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """A collection of metric families with Prometheus text exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create accessors so call
    sites never race on registration; they take an optional ``labels``
    mapping selecting one series of the family.  Re-registering a family
    name with a different metric type raises — across *all* label sets, so
    a family cannot be half counter, half histogram.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, type] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self, kind, name: str, help: str, labels: Optional[Mapping[str, str]], **kwargs
    ):
        items = _label_items(labels)
        with self._lock:
            registered = self._kinds.get(name)
            if registered is not None and registered is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as {registered.__name__}"
                )
            existing = self._metrics.get((name, items))
            if existing is not None:
                return existing
            metric = kind(name, help, labels=dict(items) if items else None, **kwargs)
            self._metrics[(name, items)] = metric
            self._kinds[name] = kind
            return metric

    def counter(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, bounds=bounds)

    def get(self, name: str, labels: Optional[Mapping[str, str]] = None):
        """One series by family name and label set (``None`` if absent)."""
        return self._metrics.get((name, _label_items(labels)))

    def series(self, name: str) -> List[object]:
        """Every series of one family, in sorted label order."""
        with self._lock:
            keys = sorted(key for key in self._metrics if key[0] == name)
        return [self._metrics[key] for key in keys]

    def names(self) -> List[str]:
        """Sorted family names (each may hold several labelled series)."""
        with self._lock:
            return sorted({name for name, _ in self._metrics})

    # ------------------------------------------------------------ transport
    def to_dict(self) -> dict:
        """Picklable payload keyed by series (``name`` or ``name{labels}``)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {
            series_key(name, items): metric.to_dict() for (name, items), metric in metrics
        }

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its ``to_dict``) into this one.

        Unknown series are created on the fly so a worker process can
        define label sets (or whole families) the parent has not observed
        yet — families whose series carry different label sets merge into
        disjoint series, never an error.  Payload values carry their own
        ``name``/``labels``, so both the current series-keyed form and the
        pre-label name-keyed form are accepted.
        """
        data = other.to_dict() if isinstance(other, MetricsRegistry) else other
        for key, payload in data.items():
            name = payload.get("name", key)
            labels = payload.get("labels")
            kind = payload.get("type", "counter")
            if kind == "histogram":
                metric = self.histogram(
                    name, payload.get("help", ""), bounds=payload["bounds"], labels=labels
                )
            elif kind == "gauge":
                metric = self.gauge(name, payload.get("help", ""), labels=labels)
            else:
                metric = self.counter(name, payload.get("help", ""), labels=labels)
            metric.merge(payload)

    # ----------------------------------------------------------- exposition
    def render(self) -> str:
        """Render every family in the Prometheus text exposition format.

        One ``# HELP``/``# TYPE`` pair per family, then one sample line per
        series with its label string.  HELP text escapes backslashes and
        newlines; label values additionally escape double quotes.
        """
        lines: List[str] = []
        with self._lock:
            keys = sorted(self._metrics)
            families: Dict[str, List[object]] = {}
            for name, items in keys:
                families.setdefault(name, []).append(self._metrics[(name, items)])
        for name in sorted(families):
            group = families[name]
            help_text = next((metric.help for metric in group if metric.help), "")
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            first = group[0]
            if isinstance(first, Histogram):
                lines.append(f"# TYPE {name} histogram")
            elif isinstance(first, Gauge):
                lines.append(f"# TYPE {name} gauge")
            else:
                lines.append(f"# TYPE {name} counter")
            for metric in group:
                label_string = _label_string(metric.labels)
                if isinstance(metric, Histogram):
                    data = metric.to_dict()
                    cumulative = 0
                    for bound, bucket_count in zip(data["bounds"], data["counts"]):
                        cumulative += bucket_count
                        bucket_labels = _merge_label_strings(
                            label_string, f'le="{_format_value(bound)}"'
                        )
                        lines.append(f"{name}_bucket{{{bucket_labels}}} {cumulative}")
                    cumulative += data["counts"][-1]
                    bucket_labels = _merge_label_strings(label_string, 'le="+Inf"')
                    lines.append(f"{name}_bucket{{{bucket_labels}}} {cumulative}")
                    suffix = f"{{{label_string}}}" if label_string else ""
                    lines.append(f"{name}_sum{suffix} {repr(float(data['sum']))}")
                    lines.append(f"{name}_count{suffix} {data['count']}")
                else:
                    suffix = f"{{{label_string}}}" if label_string else ""
                    lines.append(f"{name}{suffix} {_format_value(metric.value)}")
        return "\n".join(lines) + "\n"


def _merge_label_strings(base: str, extra: str) -> str:
    return f"{base},{extra}" if base else extra
