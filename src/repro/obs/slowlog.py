"""Policy-driven slow-query log.

A bounded, thread-safe ring of the most recent queries that exceeded the
``ExecutionPolicy.slow_query_seconds`` threshold (env
``REPRO_SLOW_QUERY_SECONDS``).  Each entry carries the query text, the
document, wall seconds, the queue-wait share when the server recorded one,
and — when tracing was on — the span breakdown of where the time went.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Ring buffer of slow-query records; disabled when ``threshold`` is None."""

    def __init__(self, threshold: Optional[float] = None, capacity: int = 64) -> None:
        if threshold is not None and threshold < 0:
            raise ValueError("slow-query threshold must be non-negative")
        self.threshold = threshold
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        return self.threshold is not None

    def __len__(self) -> int:
        return len(self._entries)

    def should_log(self, seconds: float) -> bool:
        return self.threshold is not None and seconds >= self.threshold

    def record(
        self,
        seconds: float,
        query: Optional[str] = None,
        document: Optional[str] = None,
        queue_wait: Optional[float] = None,
        trace: Optional[dict] = None,
        **extra: Any,
    ) -> Optional[dict]:
        """Record one slow query if it clears the threshold.

        Returns the stored entry (so callers can also emit it elsewhere), or
        ``None`` when the log is disabled or the query was fast enough.
        """
        if not self.should_log(seconds):
            return None
        entry: Dict[str, Any] = {
            "at": time.time(),
            "seconds": seconds,
            "threshold": self.threshold,
            "query": query,
            "document": document,
        }
        if queue_wait is not None:
            entry["queue_wait"] = queue_wait
        if trace is not None:
            entry["trace"] = trace
        entry.update(extra)
        with self._lock:
            if len(self._entries) == self._entries.maxlen:
                self._dropped += 1
            self._entries.append(entry)
        return entry

    def entries(self, limit: Optional[int] = None) -> List[dict]:
        """Most recent entries first."""
        with self._lock:
            items = list(self._entries)
        items.reverse()
        if limit is not None:
            items = items[:limit]
        return items

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "threshold": self.threshold,
                "size": len(self._entries),
                "dropped": self._dropped,
                "entries": list(self._entries),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._dropped = 0
