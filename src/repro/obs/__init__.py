"""Observability: metrics registry, span tracer, and slow-query log.

``repro.obs`` is the unified telemetry substrate the serving stack builds
on — see the README "Observability" section for metric names, the trace
format, and a scraping example.

- :mod:`repro.obs.metrics` — counters, gauges, mergeable log-bucket
  histograms, nearest-rank ``quantile``, and a Prometheus text renderer.
- :mod:`repro.obs.trace` — per-query span trees, off by default, enabled
  via ``ExecutionPolicy.trace`` / ``REPRO_TRACE``.
- :mod:`repro.obs.slowlog` — policy-driven slow-query ring buffer
  (``ExecutionPolicy.slow_query_seconds`` / ``REPRO_SLOW_QUERY_SECONDS``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_bounds,
    quantile,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    TRACE_ENV,
    Span,
    drain_finished,
    enabled,
    format_tree,
    last_trace,
    record_span,
    render_events,
    reset_thread,
    set_tracing,
    span,
    take_last_trace,
    trace_events,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_bounds",
    "quantile",
    "SlowQueryLog",
    "TRACE_ENV",
    "Span",
    "drain_finished",
    "enabled",
    "format_tree",
    "last_trace",
    "record_span",
    "render_events",
    "reset_thread",
    "set_tracing",
    "span",
    "take_last_trace",
    "trace_events",
]
