"""Observability: metrics, tracing, slow-query log, exposition, calibration.

``repro.obs`` is the unified telemetry substrate the serving stack builds
on — see the README "Observability" section for metric names, the trace
format, and a scraping example.

- :mod:`repro.obs.metrics` — labelled counters, gauges, mergeable
  log-bucket histograms, nearest-rank ``quantile``, and a Prometheus text
  renderer.
- :mod:`repro.obs.trace` — per-query span trees, off by default; full
  tracing via ``ExecutionPolicy.trace`` / ``REPRO_TRACE``, probabilistic
  head sampling via ``ExecutionPolicy.trace_sample`` /
  ``REPRO_TRACE_SAMPLE``.
- :mod:`repro.obs.slowlog` — policy-driven slow-query ring buffer
  (``ExecutionPolicy.slow_query_seconds`` / ``REPRO_SLOW_QUERY_SECONDS``)
  whose entries carry span-tree exemplars.
- :mod:`repro.obs.http` — stdlib HTTP exposition (``/metrics``,
  ``/healthz``, ``/slowlog.json``, ``/traces.ndjson``) behind
  ``ServingPolicy.obs_port`` / ``REPRO_OBS_PORT``.
- :mod:`repro.obs.calibrate` — fits the kernel cost model's ns constants
  from recorded ``kernel.compose`` spans (``REPRO_COST_PROFILE``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_bounds,
    quantile,
    series_key,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    TRACE_ENV,
    TRACE_SAMPLE_ENV,
    Span,
    drain_finished,
    enabled,
    finished_traces,
    format_tree,
    last_trace,
    record_span,
    render_events,
    reset_thread,
    sample_rate,
    set_trace_sample,
    set_tracing,
    span,
    take_last_trace,
    trace_events,
)
from repro.obs.http import OBS_PORT_ENV, ObsHTTPServer
from repro.obs.calibrate import (
    fit_constants,
    load_profile,
    samples_from_traces,
    save_profile,
)
# NOTE: the ``calibrate()`` entry point is deliberately not re-exported at
# package level: ``from repro.obs import calibrate`` must keep resolving to
# the *submodule* (re-exporting the function would shadow it).

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_bounds",
    "quantile",
    "series_key",
    "SlowQueryLog",
    "TRACE_ENV",
    "TRACE_SAMPLE_ENV",
    "Span",
    "drain_finished",
    "enabled",
    "finished_traces",
    "format_tree",
    "last_trace",
    "record_span",
    "render_events",
    "reset_thread",
    "sample_rate",
    "set_trace_sample",
    "set_tracing",
    "span",
    "take_last_trace",
    "trace_events",
    "OBS_PORT_ENV",
    "ObsHTTPServer",
    "fit_constants",
    "load_profile",
    "samples_from_traces",
    "save_profile",
]
