"""Binary-query oracles: the interface between HCL(L) and the language L.

Proposition 10 assumes that every binary query ``b`` occurring in a formula
is precompiled into a data structure returning the successor set ``S_{u,b}``
of any node in time proportional to its size.  The classes here provide that
interface for the three instantiations of ``L`` used in the library:

* :class:`PPLbinOracle` — ``L = PPLbin`` (the paper's instantiation for PPL),
  backed by the Theorem 2 matrix evaluator.
* :class:`AxisOracle` — ``L`` = the raw axes of Core XPath, used by the
  encodings of Section 6 and by unit tests.
* :class:`ExplicitRelationOracle` — ``L`` = explicitly given node-pair
  relations, used to plug arbitrary binary FO queries (computed elsewhere)
  into HCL, and by hypothesis-generated relations in tests.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Protocol

import numpy as np

from repro.errors import EvaluationError
from repro.trees.axes import Axis, axis_matrix, label_vector
from repro.trees.tree import Tree
from repro.pplbin.ast import BinExpr
from repro.pplbin.evaluator import PPLbinEvaluator


class BinaryQueryOracle(Protocol):
    """Protocol required of the parameter language ``L``.

    ``pairs(b)`` returns the full binary query ``q_b(t)`` as node pairs;
    ``successors(b, u)`` returns all ``v`` with ``(u, v) in q_b(t)``.  Both
    are expected to be cheap after a one-time precompilation per distinct
    ``b`` (this is the ``sum_b p(|b|, |t|)`` term of Propositions 10/11).
    """

    def pairs(self, query: Any) -> Iterable[tuple[int, int]]:  # pragma: no cover
        ...

    def successors(self, query: Any, node: int) -> Iterable[int]:  # pragma: no cover
        ...


class PPLbinOracle:
    """Oracle for ``L = PPLbin`` backed by the matrix evaluator of Theorem 2.

    Runs on the pluggable relation kernel of
    :mod:`repro.pplbin.bitmatrix` (``kernel`` of ``None`` = the process
    default).  ``successors`` is demand-driven: a cold query answers a row
    without materialising the full matrix, and the underlying
    :class:`repro.pplbin.evaluator.PPLbinEvaluator` materialises the full
    relation only once a query has been probed often enough to amortise it.
    """

    def __init__(self, tree: Tree, kernel=None) -> None:
        self.tree = tree
        self._evaluator = PPLbinEvaluator(tree, kernel=kernel)

    @property
    def kernel(self):
        """The relation kernel the oracle evaluates with."""
        return self._evaluator.kernel

    def relation(self, query: BinExpr | str):
        """Return (and cache) the relation of ``query`` on the tree."""
        return self._evaluator.relation(query)

    def matrix(self, query: BinExpr | str) -> np.ndarray:
        """Return (and cache) the Boolean matrix of ``query``."""
        return self._evaluator.matrix(query)

    def pairs(self, query: BinExpr | str) -> frozenset[tuple[int, int]]:
        """Return ``q_b(t)`` as an explicit set of pairs."""
        return self._evaluator.pairs(query)

    def successors(self, query: BinExpr | str, node: int) -> list[int]:
        """Return all successors of ``node`` under ``query``."""
        return self._evaluator.successors(query, node)

    def has_successor(self, query: BinExpr | str, node: int) -> bool:
        """Return True when ``node`` has at least one successor."""
        return self._evaluator.has_successor(query, node)


class AxisOracle:
    """Oracle whose binary queries are ``(axis, nametest)`` pairs or bare axes."""

    def __init__(self, tree: Tree) -> None:
        self.tree = tree

    def _matrix(self, query) -> np.ndarray:
        axis, nametest = query if isinstance(query, tuple) else (query, None)
        if not isinstance(axis, Axis):
            raise EvaluationError(f"AxisOracle queries are Axis values, got {axis!r}")
        matrix = axis_matrix(self.tree, axis)
        if nametest is None:
            return matrix
        return matrix & label_vector(self.tree, nametest)[np.newaxis, :]

    def pairs(self, query) -> frozenset[tuple[int, int]]:
        """Return the axis relation (optionally label-filtered) as pairs."""
        rows, cols = np.nonzero(self._matrix(query))
        return frozenset(zip(rows.tolist(), cols.tolist()))

    def successors(self, query, node: int) -> list[int]:
        """Return the axis successors of ``node`` (optionally label-filtered)."""
        return np.flatnonzero(self._matrix(query)[node]).tolist()


class ExplicitRelationOracle:
    """Oracle over explicitly materialised relations.

    ``relations`` maps a query name (any hashable) to an iterable of node
    pairs.  This is how arbitrary binary FO queries — computed once by the
    FO model checker — are plugged into HCL(FObin) in Section 8 experiments.
    """

    def __init__(self, relations: Mapping[Any, Iterable[tuple[int, int]]]) -> None:
        self._pairs: dict[Any, frozenset[tuple[int, int]]] = {}
        self._successors: dict[Any, dict[int, list[int]]] = {}
        for name, pairs in relations.items():
            frozen = frozenset(tuple(pair) for pair in pairs)
            self._pairs[name] = frozen
            by_source: dict[int, list[int]] = {}
            for source, target in sorted(frozen):
                by_source.setdefault(source, []).append(target)
            self._successors[name] = by_source

    def pairs(self, query: Any) -> frozenset[tuple[int, int]]:
        """Return the stored relation for ``query``."""
        try:
            return self._pairs[query]
        except KeyError:
            raise EvaluationError(f"unknown binary query {query!r}") from None

    def successors(self, query: Any, node: int) -> list[int]:
        """Return the stored successors of ``node`` under ``query``."""
        try:
            return self._successors[query].get(node, [])
        except KeyError:
            raise EvaluationError(f"unknown binary query {query!r}") from None

    def add(self, query: Any, pairs: Iterable[tuple[int, int]]) -> None:
        """Register one more named relation."""
        frozen = frozenset(tuple(pair) for pair in pairs)
        self._pairs[query] = frozen
        by_source: dict[int, list[int]] = {}
        for source, target in sorted(frozen):
            by_source.setdefault(source, []).append(target)
        self._successors[query] = by_source
