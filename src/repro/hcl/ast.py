"""Syntax (Fig. 5) and naive semantics (Fig. 6) of HCL(L).

Expressions are parameterised by an arbitrary binary query language ``L``:
a leaf holds an opaque expression ``b`` of ``L`` (for this library usually a
:class:`repro.pplbin.ast.BinExpr`), and evaluation goes through a
:class:`repro.hcl.binding.BinaryQueryOracle` supplying ``q_b(t)``.

The naive evaluation functions here are the direct transcription of Fig. 6
and the n-ary query definition; like the Core XPath naive engine they exist
as correctness oracles for the polynomial algorithm of Fig. 8.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import EvaluationError, UnboundVariableError
from repro.pickling import strip_cached_properties
from repro.trees.tree import Tree


class HclExpr:
    """Base class of HCL composition formulas."""

    def __getstate__(self) -> dict:
        return strip_cached_properties(self)

    @cached_property
    def size(self) -> int:
        """Composition size |C|: leaves count 1 regardless of their own size."""
        return 1 + sum(child.size for child in self.children())

    @cached_property
    def free_variables(self) -> frozenset[str]:
        """The variables occurring in the formula."""
        names: set[str] = set()
        for sub in self.walk():
            if isinstance(sub, HVar):
                names.add(sub.name)
        return frozenset(names)

    def children(self) -> tuple["HclExpr", ...]:
        """Direct sub-formulas."""
        return ()

    def walk(self) -> Iterator["HclExpr"]:
        """Yield this formula and all sub-formulas (preorder)."""
        stack: list[HclExpr] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def leaves(self) -> Iterator["Leaf"]:
        """Yield every leaf (binary query) of the formula."""
        for sub in self.walk():
            if isinstance(sub, Leaf):
                yield sub

    def unparse(self) -> str:
        """Return a readable rendering of the formula."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.unparse()


@dataclass(frozen=True)
class Leaf(HclExpr):
    """A binary query ``b`` of the parameter language ``L``."""

    query: Any

    def unparse(self) -> str:
        return f"<{self.query}>"


@dataclass(frozen=True)
class HVar(HclExpr):
    """A variable ``x`` — the partial identity ``{(alpha(x), alpha(x))}``."""

    name: str

    def unparse(self) -> str:
        return self.name


@dataclass(frozen=True)
class HCompose(HclExpr):
    """Composition ``C/C'``."""

    left: HclExpr
    right: HclExpr

    def children(self) -> tuple[HclExpr, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"{self.left.unparse()}/{self.right.unparse()}"


@dataclass(frozen=True)
class HFilter(HclExpr):
    """Filter ``[C]`` — the partial identity on nodes from which ``C`` starts."""

    inner: HclExpr

    def children(self) -> tuple[HclExpr, ...]:
        return (self.inner,)

    def unparse(self) -> str:
        return f"[{self.inner.unparse()}]"


@dataclass(frozen=True)
class HUnion(HclExpr):
    """Disjunction ``C ∪ C'``."""

    left: HclExpr
    right: HclExpr

    def children(self) -> tuple[HclExpr, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} U {self.right.unparse()})"


def compose(*parts: HclExpr) -> HclExpr:
    """Compose formulas left to right with ``/``."""
    if not parts:
        raise ValueError("compose() requires at least one formula")
    result = parts[0]
    for part in parts[1:]:
        result = HCompose(result, part)
    return result


def union(*parts: HclExpr) -> HclExpr:
    """Union of one or more formulas."""
    if not parts:
        raise ValueError("union() requires at least one formula")
    result = parts[0]
    for part in parts[1:]:
        result = HUnion(result, part)
    return result


# ------------------------------------------------------------ naive semantics
Assignment = Mapping[str, int]


def evaluate_hcl(
    tree: Tree, formula: HclExpr, assignment: Assignment, oracle
) -> frozenset[tuple[int, int]]:
    """Return ``[[C]]^{t,alpha}`` following Fig. 6 (naive, for cross-checking).

    ``oracle`` must provide ``pairs(b)`` returning ``q_b(t)`` for leaf
    queries ``b`` (see :class:`repro.hcl.binding.BinaryQueryOracle`).
    """
    if isinstance(formula, Leaf):
        return frozenset(oracle.pairs(formula.query))
    if isinstance(formula, HVar):
        try:
            node = assignment[formula.name]
        except KeyError:
            raise UnboundVariableError(formula.name) from None
        return frozenset({(node, node)})
    if isinstance(formula, HCompose):
        left = evaluate_hcl(tree, formula.left, assignment, oracle)
        right = evaluate_hcl(tree, formula.right, assignment, oracle)
        by_source: dict[int, set[int]] = {}
        for source, target in right:
            by_source.setdefault(source, set()).add(target)
        return frozenset(
            (source, target)
            for source, middle in left
            for target in by_source.get(middle, ())
        )
    if isinstance(formula, HFilter):
        inner = evaluate_hcl(tree, formula.inner, assignment, oracle)
        starts = {source for source, _ in inner}
        return frozenset((node, node) for node in starts)
    if isinstance(formula, HUnion):
        return evaluate_hcl(tree, formula.left, assignment, oracle) | evaluate_hcl(
            tree, formula.right, assignment, oracle
        )
    raise EvaluationError(f"unknown HCL formula {formula!r}")


def hcl_naive_answer(
    tree: Tree, formula: HclExpr, variables: Sequence[str], oracle
) -> frozenset[tuple[int, ...]]:
    """Answer ``q_{C,x}(t)`` by brute-force assignment enumeration.

    Exponential in the number of variables; used only as the correctness
    oracle for the Fig. 8 algorithm in tests.
    """
    inner_variables = sorted(formula.free_variables)
    nodes = list(tree.nodes())
    witnesses: set[tuple[int, ...]] = set()
    for values in itertools.product(nodes, repeat=len(inner_variables)):
        assignment = dict(zip(inner_variables, values))
        if evaluate_hcl(tree, formula, assignment, oracle):
            witnesses.add(tuple(assignment.get(name, -1) for name in variables))
    if not witnesses:
        return frozenset()
    free_positions = [
        index
        for index, name in enumerate(variables)
        if name not in formula.free_variables
    ]
    if not free_positions:
        return frozenset(witnesses)
    answers: set[tuple[int, ...]] = set()
    for witness in witnesses:
        for values in itertools.product(nodes, repeat=len(free_positions)):
            completed = list(witness)
            for position, value in zip(free_positions, values):
                completed[position] = value
            answers.add(tuple(completed))
    return frozenset(answers)
