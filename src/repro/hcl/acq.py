"""Acyclic conjunctive queries over binary relations (Section 6).

A conjunctive query over a binary query language ``L`` is a set of atoms
``b(x, y)`` (with ``b`` in ``L``) plus equality atoms ``x = y``, together
with a tuple of output variables.  Section 6 of the paper relates the
union-free fragment of HCL⁻(L) to *acyclic* conjunctive queries (ACQs):

* Proposition 8 — when ``L`` is closed under intersection and inverse and
  contains ``ch*``, ACQ(L) and HCL⁻(L) ∩ N(∪) capture the same queries;
* Proposition 7 — ACQs are answerable in output-sensitive polynomial time
  (Yannakakis' algorithm, :mod:`repro.hcl.yannakakis`).

This module provides the ACQ representation, the acyclicity test (the query
graph must be a forest), the translation into HCL⁻∩N(∪) following the proof
of Proposition 8, and a naive evaluator used as a correctness oracle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import NotAcyclicError, ReproError
from repro.hcl.ast import HclExpr, HCompose, HFilter, HUnion, HVar, Leaf


@dataclass(frozen=True)
class Atom:
    """A binary atom ``relation(source, target)`` over variables."""

    relation: Any
    source: str
    target: str


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query over binary atoms.

    Parameters
    ----------
    atoms:
        The binary atoms of the query body.
    output:
        The output (free) variables, in tuple order.
    equalities:
        Optional equality atoms ``x = y``.
    """

    atoms: tuple[Atom, ...]
    output: tuple[str, ...]
    equalities: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    @property
    def variables(self) -> frozenset[str]:
        """All variables occurring in the query."""
        names = set(self.output)
        for atom in self.atoms:
            names.add(atom.source)
            names.add(atom.target)
        for left, right in self.equalities:
            names.add(left)
            names.add(right)
        return frozenset(names)

    def edges(self) -> list[tuple[str, str, Any]]:
        """Return the (source, target, relation) edges of the query graph."""
        return [(atom.source, atom.target, atom.relation) for atom in self.atoms]


@dataclass(frozen=True)
class UnionOfACQs:
    """A finite union of conjunctive queries with identical output tuples."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    def __post_init__(self) -> None:
        outputs = {query.output for query in self.disjuncts}
        if len(outputs) > 1:
            raise ReproError("all disjuncts of a union must share the output tuple")

    @property
    def output(self) -> tuple[str, ...]:
        return self.disjuncts[0].output if self.disjuncts else ()


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """Return True when the query graph is a forest (no cycles, no multi-edges).

    For binary-relation queries this coincides with hypergraph acyclicity.
    Equality atoms count as edges too.  Self-loop atoms ``b(x, x)`` are not
    considered acyclic here (they can be removed up-front by intersecting
    with the identity when ``L`` permits).
    """
    edges: list[tuple[str, str]] = [(a.source, a.target) for a in query.atoms]
    edges.extend(query.equalities)
    seen_pairs: set[frozenset[str]] = set()
    parent: dict[str, str] = {}

    def find(item: str) -> str:
        while parent.get(item, item) != item:
            parent[item] = parent.get(parent[item], parent[item])
            item = parent[item]
        return item

    for source, target in edges:
        if source == target:
            return False
        pair = frozenset((source, target))
        if pair in seen_pairs:
            return False
        seen_pairs.add(pair)
        root_source, root_target = find(source), find(target)
        if root_source == root_target:
            return False
        parent[root_source] = root_target
    return True


def naive_acq_answer(
    query: ConjunctiveQuery,
    relations: Mapping[Any, Iterable[tuple[int, int]]],
    nodes: Sequence[int],
) -> frozenset[tuple[int, ...]]:
    """Answer a conjunctive query by brute-force enumeration (oracle for tests)."""
    materialised = {name: frozenset(pairs) for name, pairs in relations.items()}
    variables = sorted(query.variables)
    answers: set[tuple[int, ...]] = set()
    for values in itertools.product(nodes, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(
            (assignment[a.source], assignment[a.target]) in materialised[a.relation]
            for a in query.atoms
        ) and all(assignment[x] == assignment[y] for x, y in query.equalities):
            answers.add(tuple(assignment[name] for name in query.output))
    return frozenset(answers)


# --------------------------------------------------------------- to HCL⁻∩N(∪)
def acq_to_hcl(
    query: ConjunctiveQuery,
    chstar: Any,
    invert: Optional[Callable[[Any], Any]] = None,
    intersect: Optional[Callable[[Any, Any], Any]] = None,
) -> HclExpr:
    """Translate an acyclic conjunctive query into a union-free HCL⁻ formula.

    Follows the proof of Proposition 8: orient the query forest away from a
    root, inverting relations when an edge points towards the root (which
    requires ``L`` closed under inverse, supplied as ``invert``), merge
    parallel edges with ``intersect`` when supplied, and emit, for each root
    of the forest, a formula ``chstar / root_var / [subtree] / [subtree] ...``
    where ``chstar`` is the universal reachability query used to jump to the
    root variable's node from anywhere (as in the proof of Proposition 6).

    Raises
    ------
    NotAcyclicError
        If the query is not acyclic (and parallel edges cannot be merged).
    """
    adjacency: dict[str, list[tuple[str, Any, bool]]] = {v: [] for v in query.variables}
    for atom in query.atoms:
        adjacency[atom.source].append((atom.target, atom.relation, False))
        adjacency[atom.target].append((atom.source, atom.relation, True))
    for left, right in query.equalities:
        # x = y is the atom (ch* ∩ (ch*)^-1)(x, y); with forests it is simpler
        # to treat it as a relation that must be provided by the oracle.
        raise NotAcyclicError(
            "equality atoms are not supported by acq_to_hcl; replace them by "
            "renaming variables before translation"
        )

    if not is_acyclic(query):
        raise NotAcyclicError("the conjunctive query graph is not a forest")

    visited: set[str] = set()
    components: list[HclExpr] = []

    def build(variable: str, parent_variable: Optional[str]) -> HclExpr:
        """Return the formula for the subtree rooted at ``variable``."""
        visited.add(variable)
        parts: list[HclExpr] = [HVar(variable)]
        for neighbour, relation, inverted in adjacency[variable]:
            if neighbour == parent_variable or neighbour in visited:
                continue
            edge_relation = relation
            if inverted:
                if invert is None:
                    raise NotAcyclicError(
                        "edge orientation requires an inverse operation on L"
                    )
                edge_relation = invert(relation)
            subtree = build(neighbour, variable)
            parts.append(HFilter(HCompose(Leaf(edge_relation), subtree)))
        result = parts[0]
        for part in parts[1:]:
            result = HCompose(result, part)
        return result

    for variable in sorted(query.variables):
        if variable in visited:
            continue
        subtree = build(variable, None)
        components.append(HCompose(Leaf(chstar), subtree))

    if not components:
        raise NotAcyclicError("the conjunctive query has no variables")

    # Independent components are joined with filters at an arbitrary start
    # node: [component1]/[component2]/... — they do not share variables, so
    # NVS(/) is preserved.
    result: HclExpr = HFilter(components[0])
    for component in components[1:]:
        result = HCompose(result, HFilter(component))
    return result


def union_to_hcl(
    queries: UnionOfACQs,
    chstar: Any,
    invert: Optional[Callable[[Any], Any]] = None,
    intersect: Optional[Callable[[Any, Any], Any]] = None,
) -> HclExpr:
    """Translate a union of ACQs into an HCL⁻ formula (Proposition 9, easy side)."""
    if not queries.disjuncts:
        raise NotAcyclicError("a union of ACQs must have at least one disjunct")
    formulas = [
        acq_to_hcl(query, chstar, invert=invert, intersect=intersect)
        for query in queries.disjuncts
    ]
    result = formulas[0]
    for formula in formulas[1:]:
        result = HUnion(result, formula)
    return result


def hcl_to_acq(formula: HclExpr) -> ConjunctiveQuery:
    """Translate a union-free HCL⁻ formula into a conjunctive query.

    This is the easy direction of Proposition 8 (and of Proposition 6's
    positive-FO translation): introduce a fresh variable for every position
    and one atom per leaf.  Output variables are the formula's own variables.
    """
    counter = itertools.count()
    atoms: list[Atom] = []
    equalities: list[tuple[str, str]] = []

    def fresh() -> str:
        return f"_pos{next(counter)}"

    def convert(expr: HclExpr, source: str, target: str) -> None:
        if isinstance(expr, Leaf):
            atoms.append(Atom(expr.query, source, target))
        elif isinstance(expr, HVar):
            equalities.append((source, expr.name))
            equalities.append((expr.name, target))
        elif isinstance(expr, HCompose):
            middle = fresh()
            convert(expr.left, source, middle)
            convert(expr.right, middle, target)
        elif isinstance(expr, HFilter):
            middle = fresh()
            convert(expr.inner, source, middle)
            equalities.append((source, target))
        elif isinstance(expr, HUnion):
            raise NotAcyclicError("hcl_to_acq only handles union-free formulas")
        else:  # pragma: no cover - exhaustive
            raise NotAcyclicError(f"unknown formula {expr!r}")

    start, end = fresh(), fresh()
    convert(formula, start, end)
    output = tuple(sorted(formula.free_variables))
    return ConjunctiveQuery(tuple(atoms), output, tuple(equalities))
