"""Yannakakis' algorithm for acyclic conjunctive queries over binary relations.

Proposition 7 of the paper reduces answering ACQs over a binary query
language ``L`` to answering ACQs over the relational database
``db = { q_b(t) | b in L }`` and invokes Yannakakis' classic algorithm,
which runs in combined time ``O(|db| |Q| |Q(db)|)``.

The implementation here specialises Yannakakis to forests of binary atoms
(which is all Section 6 needs):

1. orient the query forest away from chosen roots;
2. bottom-up semi-join pass: for every variable, compute the set of nodes
   that can start a satisfying embedding of its subtree;
3. top-down enumeration of answer tuples, never materialising partial tuples
   that cannot be completed (this is what makes the algorithm
   output-sensitive).

It serves both as an independent answering path for ACQs (cross-checked
against the Fig. 8 algorithm in tests) and as the engine behind the E8/E2
comparisons.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.errors import NotAcyclicError
from repro.hcl.acq import Atom, ConjunctiveQuery, is_acyclic


class _IndexedRelation:
    """A binary relation indexed by source and by target."""

    def __init__(self, pairs: Iterable[tuple[int, int]]) -> None:
        self.pairs = frozenset(tuple(pair) for pair in pairs)
        self.by_source: dict[int, list[int]] = {}
        self.by_target: dict[int, list[int]] = {}
        for source, target in sorted(self.pairs):
            self.by_source.setdefault(source, []).append(target)
            self.by_target.setdefault(target, []).append(source)

    def forward(self, node: int) -> list[int]:
        return self.by_source.get(node, [])

    def backward(self, node: int) -> list[int]:
        return self.by_target.get(node, [])

    def sources(self) -> set[int]:
        return set(self.by_source)

    def targets(self) -> set[int]:
        return set(self.by_target)


def yannakakis_answer(
    query: ConjunctiveQuery,
    relations: Mapping[Any, Iterable[tuple[int, int]]],
    nodes: Sequence[int],
) -> frozenset[tuple[int, ...]]:
    """Answer an acyclic conjunctive query with the semi-join algorithm.

    Parameters
    ----------
    query:
        The conjunctive query; must be acyclic and free of equality atoms
        (rename variables away first).
    relations:
        Materialised binary relations, one per distinct atom relation.
    nodes:
        The active domain (all tree nodes); output variables not constrained
        by any atom range over it.

    Raises
    ------
    NotAcyclicError
        If the query is cyclic or uses equality atoms.
    """
    if query.equalities:
        raise NotAcyclicError("rename equal variables apart before calling Yannakakis")
    if not is_acyclic(query):
        raise NotAcyclicError("Yannakakis' algorithm requires an acyclic query")

    indexed = {name: _IndexedRelation(pairs) for name, pairs in relations.items()}
    adjacency: dict[str, list[tuple[str, Atom, bool]]] = {v: [] for v in query.variables}
    for atom in query.atoms:
        adjacency[atom.source].append((atom.target, atom, False))
        adjacency[atom.target].append((atom.source, atom, True))

    # ---------------------------------------------------------------- forest
    visited: set[str] = set()
    roots: list[str] = []
    order: list[tuple[str, Optional[str], Optional[Atom], bool]] = []
    for variable in sorted(query.variables):
        if variable in visited:
            continue
        roots.append(variable)
        stack: list[tuple[str, Optional[str], Optional[Atom], bool]] = [
            (variable, None, None, False)
        ]
        while stack:
            current, parent, via_atom, inverted = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            order.append((current, parent, via_atom, inverted))
            for neighbour, atom, edge_inverted in adjacency[current]:
                if neighbour not in visited:
                    stack.append((neighbour, current, atom, edge_inverted))

    children: dict[str, list[tuple[str, Atom, bool]]] = {v: [] for v in query.variables}
    for current, parent, via_atom, inverted in order:
        if parent is not None and via_atom is not None:
            children[parent].append((current, via_atom, inverted))

    # ------------------------------------------------- bottom-up semi-joins
    # candidate[v] = nodes u such that the subtree rooted at v embeds with
    # v -> u.  Processing `order` in reverse visits children before parents.
    candidates: dict[str, set[int]] = {}
    for current, _, _, _ in reversed(order):
        if not adjacency[current]:
            candidates[current] = set(nodes)
            continue
        possible: Optional[set[int]] = None
        for child, atom, inverted in children[current]:
            relation = indexed[atom.relation]
            child_candidates = candidates[child]
            if inverted:
                # Edge atom is relation(child, current): current must be a
                # target of some candidate child node.
                reachable = {
                    target
                    for source in child_candidates
                    for target in relation.forward(source)
                }
            else:
                # Edge atom is relation(current, child).
                reachable = {
                    source
                    for target in child_candidates
                    for source in relation.backward(target)
                }
            possible = reachable if possible is None else possible & reachable
        if possible is None:
            possible = set(nodes)
        candidates[current] = possible

    # ------------------------------------------------ top-down enumeration
    def enumerate_subtree(variable: str, value: int) -> Iterable[dict[str, int]]:
        """Yield all embeddings of the subtree rooted at ``variable`` given its value."""
        partials: list[dict[str, int]] = [{variable: value}]
        for child, atom, inverted in children[variable]:
            relation = indexed[atom.relation]
            next_partials: list[dict[str, int]] = []
            if inverted:
                options = [v for v in relation.backward(value) if v in candidates[child]]
            else:
                options = [v for v in relation.forward(value) if v in candidates[child]]
            for partial in partials:
                for option in options:
                    for extension in enumerate_subtree(child, option):
                        merged = dict(partial)
                        merged.update(extension)
                        next_partials.append(merged)
            partials = next_partials
            if not partials:
                return
        yield from partials

    per_root_embeddings: list[list[dict[str, int]]] = []
    for root in roots:
        embeddings: list[dict[str, int]] = []
        for value in sorted(candidates[root]):
            embeddings.extend(enumerate_subtree(root, value))
        if not embeddings:
            return frozenset()
        per_root_embeddings.append(embeddings)

    answers: set[tuple[int, ...]] = set()
    for combination in itertools.product(*per_root_embeddings):
        assignment: dict[str, int] = {}
        for embedding in combination:
            assignment.update(embedding)
        answers.add(tuple(assignment[name] for name in query.output))
    return frozenset(answers)
