"""The MC filtering table of Proposition 10.

For a sharing formula ``D`` with equation system ``Δ`` over a tree ``t``, the
table holds for every sub-formula ``D0`` and node ``u`` the Boolean value

    MC(D0, u) = 1  iff  exists alpha, u' such that (u, u') in [[D0_Δ]]^{t,alpha}

i.e. whether some navigation along ``D0`` can start at ``u`` for *some*
choice of the variables.  The table is computed lazily with memoisation; with
the precompiled binary-query oracle it costs O(|t|^2 (|D| + |Δ|)) in total,
as stated in Proposition 10.  The Fig. 8 answering algorithm consults it to
prune unsatisfiable branches in constant time.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.trees.tree import Tree
from repro.hcl.binding import BinaryQueryOracle
from repro.hcl.sharing import (
    EquationSystem,
    HeadFilter,
    HeadLeaf,
    HeadVar,
    SharedCompose,
    SharedExpr,
    SharedParam,
    SharedSelf,
    SharedUnion,
)


class MCTable:
    """Lazily memoised satisfiability table for one (D, Δ, t) triple."""

    def __init__(
        self,
        tree: Tree,
        formula: SharedExpr,
        system: EquationSystem,
        oracle: BinaryQueryOracle,
    ) -> None:
        self.tree = tree
        self.formula = formula
        self.system = system
        self.oracle = oracle
        self._memo: dict[tuple[int, int], bool] = {}
        # Keep every reachable sub-formula alive so id()-keyed memoisation is
        # stable, and count them (|D| + |Δ|, reported by `table_size`).
        self._subformulas: list[SharedExpr] = list(formula.walk())
        for _, equation in system.items():
            self._subformulas.extend(equation.walk())

    def table_size(self) -> int:
        """Return the number of sub-formulas tracked (the |D| + |Δ| factor)."""
        return len(self._subformulas)

    def entries_computed(self) -> int:
        """Return how many (sub-formula, node) entries have been memoised."""
        return len(self._memo)

    def value(self, formula: SharedExpr, node: int) -> bool:
        """Return MC(formula, node), computing and memoising it on demand."""
        key = (id(formula), node)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Seed the entry to guard against accidental cycles in Δ (which the
        # EquationSystem construction rules out, but a hand-built system
        # might violate); a cyclic reference then evaluates to False rather
        # than recursing forever.
        self._memo[key] = False
        result = self._compute(formula, node)
        self._memo[key] = result
        return result

    def _compute(self, formula: SharedExpr, node: int) -> bool:
        if isinstance(formula, SharedSelf):
            return True
        if isinstance(formula, SharedParam):
            return self.value(self.system.resolve(formula), node)
        if isinstance(formula, SharedUnion):
            return self.value(formula.left, node) or self.value(formula.right, node)
        if isinstance(formula, SharedCompose):
            head = formula.head
            if isinstance(head, HeadLeaf):
                return any(
                    self.value(formula.tail, successor)
                    for successor in self.oracle.successors(head.query, node)
                )
            if isinstance(head, HeadVar):
                # Correct because of NVS(/): the variable does not occur in the
                # tail, so its value can be chosen independently (here: u).
                return self.value(formula.tail, node)
            if isinstance(head, HeadFilter):
                return self.value(head.inner, node) and self.value(formula.tail, node)
            raise EvaluationError(f"unknown head expression {head!r}")
        raise EvaluationError(f"unknown sharing formula {formula!r}")

    def precompute(self) -> None:
        """Eagerly fill the table for every sub-formula and node.

        Mirrors the presentation of Proposition 10 (which computes the whole
        table up front); the answering algorithm itself only needs the lazy
        :meth:`value` access path.
        """
        for subformula in self._subformulas:
            for node in self.tree.nodes():
                self.value(subformula, node)
