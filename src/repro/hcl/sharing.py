"""Sharing expressions and equation systems (Lemma 3 of the paper).

The answering algorithm of Fig. 8 requires formulas in which no union occurs
on the left of a composition.  Naively rewriting ``(C1 ∪ C2)/C`` into
``C1/C ∪ C2/C`` duplicates ``C`` and can blow up exponentially, so the paper
introduces *sharing expressions* with parameters and an acyclic equation
system ``Δ``::

    E ::= x | [D] | b
    D ::= p | D ∪ D' | E/D | self

:func:`normalize` turns an arbitrary HCL formula ``C`` into a pair
``(D, Δ)`` with ``D_Δ = C`` in linear time, introducing one parameter per
union that occurs to the left of a composition (Lemma 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import EvaluationError
from repro.hcl.ast import HCompose, HclExpr, HFilter, HUnion, HVar, Leaf


# ------------------------------------------------------------ head expressions
class HeadExpr:
    """Base class of head expressions ``E ::= x | [D] | b``."""


@dataclass(frozen=True)
class HeadVar(HeadExpr):
    """A variable head ``x``."""

    name: str


@dataclass(frozen=True)
class HeadFilter(HeadExpr):
    """A filter head ``[D]``."""

    inner: "SharedExpr"


@dataclass(frozen=True)
class HeadLeaf(HeadExpr):
    """A binary-query head ``b``."""

    query: Any


# ---------------------------------------------------------- sharing expressions
class SharedExpr:
    """Base class of sharing formulas ``D``."""

    def children(self) -> tuple["SharedExpr", ...]:
        return ()

    def walk(self) -> Iterator["SharedExpr"]:
        """Yield this formula and its sub-formulas (not following parameters)."""
        stack: list[SharedExpr] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    @property
    def size(self) -> int:
        """Number of nodes of the sharing formula (parameters count 1)."""
        total = 0
        for node in self.walk():
            total += 1
            if isinstance(node, SharedCompose) and isinstance(node.head, HeadFilter):
                total += node.head.inner.size
        return total


@dataclass(frozen=True)
class SharedSelf(SharedExpr):
    """The trivial continuation ``self``."""


@dataclass(frozen=True)
class SharedParam(SharedExpr):
    """A parameter ``p`` referring to an equation of ``Δ``."""

    name: str


@dataclass(frozen=True)
class SharedUnion(SharedExpr):
    """Union ``D ∪ D'``."""

    left: SharedExpr
    right: SharedExpr

    def children(self) -> tuple[SharedExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class SharedCompose(SharedExpr):
    """Composition ``E/D`` of a head expression with a continuation."""

    head: HeadExpr
    tail: SharedExpr

    def children(self) -> tuple[SharedExpr, ...]:
        return (self.tail,)


class EquationSystem:
    """An acyclic mapping from parameter names to sharing formulas.

    Parameters are created in normalisation order; every formula may only
    reference parameters created *before* it, which guarantees acyclicity
    (the paper indexes them the other way around, which is equivalent).
    """

    def __init__(self) -> None:
        self._equations: dict[str, SharedExpr] = {}
        self._counter = 0

    def fresh(self, formula: SharedExpr) -> SharedParam:
        """Create a fresh parameter bound to ``formula`` and return it."""
        name = f"p{self._counter}"
        self._counter += 1
        self._equations[name] = formula
        return SharedParam(name)

    def resolve(self, parameter: SharedParam) -> SharedExpr:
        """Return the formula bound to ``parameter``."""
        try:
            return self._equations[parameter.name]
        except KeyError:
            raise EvaluationError(f"unknown parameter {parameter.name!r}") from None

    def items(self):
        """Iterate over ``(name, formula)`` pairs in creation order."""
        return self._equations.items()

    def __len__(self) -> int:
        return len(self._equations)

    @property
    def size(self) -> int:
        """Total size of all equations (the paper's ``|Δ|``)."""
        return sum(formula.size for formula in self._equations.values())


def normalize(formula: HclExpr) -> tuple[SharedExpr, EquationSystem]:
    """Transform an HCL formula into an equivalent pair ``(D, Δ)`` (Lemma 3).

    The transformation is linear-time and linear-size: every sub-formula of
    the input is visited once, and unions occurring to the left of a
    composition share their continuation through a fresh parameter instead of
    copying it.
    """
    system = EquationSystem()

    def convert(expr: HclExpr, continuation: SharedExpr) -> SharedExpr:
        if isinstance(expr, Leaf):
            return SharedCompose(HeadLeaf(expr.query), continuation)
        if isinstance(expr, HVar):
            return SharedCompose(HeadVar(expr.name), continuation)
        if isinstance(expr, HFilter):
            inner = convert(expr.inner, SharedSelf())
            return SharedCompose(HeadFilter(inner), continuation)
        if isinstance(expr, HCompose):
            return convert(expr.left, convert(expr.right, continuation))
        if isinstance(expr, HUnion):
            if isinstance(continuation, (SharedSelf, SharedParam)):
                shared_continuation: SharedExpr = continuation
            else:
                shared_continuation = system.fresh(continuation)
            return SharedUnion(
                convert(expr.left, shared_continuation),
                convert(expr.right, shared_continuation),
            )
        raise EvaluationError(f"unknown HCL formula {expr!r}")

    return convert(formula, SharedSelf()), system


def expand(formula: SharedExpr, system: EquationSystem) -> HclExpr:
    """Expand a sharing formula back into a plain HCL formula (``D_Δ``).

    Only used in tests and documentation examples — expansion can be
    exponentially larger than the sharing representation, which is the whole
    point of Lemma 3.
    """
    if isinstance(formula, SharedSelf):
        return Leaf(SELF_QUERY)
    if isinstance(formula, SharedParam):
        return expand(system.resolve(formula), system)
    if isinstance(formula, SharedUnion):
        return HUnion(expand(formula.left, system), expand(formula.right, system))
    if isinstance(formula, SharedCompose):
        head = formula.head
        if isinstance(head, HeadVar):
            head_expr: HclExpr = HVar(head.name)
        elif isinstance(head, HeadLeaf):
            head_expr = Leaf(head.query)
        elif isinstance(head, HeadFilter):
            head_expr = HFilter(expand(head.inner, system))
        else:  # pragma: no cover - exhaustive
            raise EvaluationError(f"unknown head {head!r}")
        if isinstance(formula.tail, SharedSelf):
            return head_expr
        return HCompose(head_expr, expand(formula.tail, system))
    raise EvaluationError(f"unknown sharing formula {formula!r}")


#: Sentinel binary query denoting the identity relation; ``self`` expands to a
#: leaf holding this value, so oracles used with *expanded* formulas (tests
#: only) must map it to the identity relation.
SELF_QUERY = "__self__"


def shared_variables(formula: SharedExpr, system: EquationSystem) -> frozenset[str]:
    """Return ``Var(D_Δ)`` — all variables of the formula, following parameters."""
    cache: dict[str, frozenset[str]] = {}

    def of(expr: SharedExpr) -> frozenset[str]:
        if isinstance(expr, SharedSelf):
            return frozenset()
        if isinstance(expr, SharedParam):
            if expr.name not in cache:
                cache[expr.name] = of(system.resolve(expr))
            return cache[expr.name]
        if isinstance(expr, SharedUnion):
            return of(expr.left) | of(expr.right)
        if isinstance(expr, SharedCompose):
            head = expr.head
            own: frozenset[str]
            if isinstance(head, HeadVar):
                own = frozenset({head.name})
            elif isinstance(head, HeadFilter):
                own = of(head.inner)
            else:
                own = frozenset()
            return own | of(expr.tail)
        raise EvaluationError(f"unknown sharing formula {expr!r}")

    return of(formula)
