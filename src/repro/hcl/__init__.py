"""HCL(L) — the hybrid composition language (substrates S5 and S6).

HCL(L) (Section 5 of the paper) builds n-ary queries from a binary query
language ``L`` using composition, variables, filters and unions.  Its
variable-sharing-free fragment HCL⁻(L) admits the output-sensitive
polynomial-time answering algorithm of Section 7 (Fig. 8), which this package
implements, along with the acyclic-conjunctive-query machinery of Section 6.

Modules:

* :mod:`~repro.hcl.ast` — syntax (Fig. 5) and naive semantics (Fig. 6).
* :mod:`~repro.hcl.binding` — the oracle interface for the parameter
  language ``L`` and concrete oracles (PPLbin, raw axes, explicit relations).
* :mod:`~repro.hcl.sharing` — sharing expressions and equation systems
  (Lemma 3).
* :mod:`~repro.hcl.mc` — the MC filtering table (Proposition 10).
* :mod:`~repro.hcl.answering` — the Fig. 8 answering algorithm
  (Proposition 11).
* :mod:`~repro.hcl.acq` / :mod:`~repro.hcl.yannakakis` — acyclic conjunctive
  queries over binary relations and Yannakakis' algorithm (Section 6).
"""

from repro.hcl.ast import (
    HclExpr,
    HCompose,
    HFilter,
    HUnion,
    HVar,
    Leaf,
    compose,
    evaluate_hcl,
    hcl_naive_answer,
    union,
)
from repro.hcl.binding import (
    AxisOracle,
    BinaryQueryOracle,
    ExplicitRelationOracle,
    PPLbinOracle,
)
from repro.hcl.sharing import EquationSystem, normalize
from repro.hcl.answering import HclAnswerer, answer_hcl, check_no_variable_sharing
from repro.hcl.acq import Atom, ConjunctiveQuery, UnionOfACQs
from repro.hcl.yannakakis import yannakakis_answer

__all__ = [
    "HclExpr",
    "Leaf",
    "HVar",
    "HCompose",
    "HFilter",
    "HUnion",
    "compose",
    "union",
    "evaluate_hcl",
    "hcl_naive_answer",
    "BinaryQueryOracle",
    "PPLbinOracle",
    "AxisOracle",
    "ExplicitRelationOracle",
    "EquationSystem",
    "normalize",
    "answer_hcl",
    "HclAnswerer",
    "check_no_variable_sharing",
    "Atom",
    "ConjunctiveQuery",
    "UnionOfACQs",
    "yannakakis_answer",
]
