"""The n-ary query answering algorithm for HCL⁻(L) (Fig. 8, Proposition 11).

Given a tree ``t``, an HCL formula ``C`` without variable sharing in
compositions, an output variable sequence ``x`` and a binary-query oracle for
``L``, the algorithm computes the answer set ``q_{C,x}(t)`` in time

    O( sum_b p(|b|, |t|)  +  n |C| |t|^2 |A| )

where ``|A|`` is the cardinality of the answer set (Corollary 3).  The steps
are exactly those of the paper:

1. normalise ``C`` into a sharing formula ``D`` with equation system ``Δ``
   (Lemma 3, :mod:`repro.hcl.sharing`);
2. build the MC filtering table (Proposition 10, :mod:`repro.hcl.mc`);
3. run the recursive, memoised ``vals`` procedure of Fig. 8, which produces
   partial valuations only for satisfiable branches, eliminates duplicates
   with set semantics, and finally extends/projects to the output tuple.

Partial valuations are represented as ``frozenset`` of ``(variable, node)``
pairs; all set unions therefore deduplicate automatically.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.errors import RestrictionViolation
from repro.trees.tree import Tree
from repro.hcl.ast import HclExpr, HCompose
from repro.hcl.binding import BinaryQueryOracle
from repro.hcl.mc import MCTable
from repro.hcl.sharing import (
    EquationSystem,
    HeadFilter,
    HeadLeaf,
    HeadVar,
    SharedCompose,
    SharedExpr,
    SharedParam,
    SharedSelf,
    SharedUnion,
    normalize,
    shared_variables,
)

Valuation = frozenset  # of (variable, node) pairs
EMPTY_VALUATION: Valuation = frozenset()


def check_no_variable_sharing(formula: HclExpr) -> None:
    """Enforce NVS(/): no variable occurs on both sides of a composition.

    Raises
    ------
    RestrictionViolation
        Naming the shared variables, when the condition fails.  Filters are
        covered as well because ``[C]/C'`` is itself a composition.
    """
    for sub in formula.walk():
        if isinstance(sub, HCompose):
            shared = sub.left.free_variables & sub.right.free_variables
            if shared:
                names = ", ".join(sorted(shared))
                raise RestrictionViolation(
                    "NVS(/)",
                    f"variables {{{names}}} occur on both sides of a composition",
                )


def _extend(
    valuations: Iterable[Valuation], target_variables: frozenset[str], nodes: Sequence[int]
) -> set[Valuation]:
    """Extend each partial valuation to be total on ``target_variables``.

    This is the paper's ``extend_{t,X}`` function: missing variables range
    over all nodes of the tree.
    """
    result: set[Valuation] = set()
    for valuation in valuations:
        domain = {variable for variable, _ in valuation}
        missing = sorted(target_variables - domain)
        if not missing:
            result.add(valuation)
            continue
        for values in itertools.product(nodes, repeat=len(missing)):
            result.add(valuation | frozenset(zip(missing, values)))
    return result


class HclAnswerer:
    """Answer n-ary HCL⁻(L) queries on a fixed tree with a fixed oracle."""

    def __init__(self, tree: Tree, oracle: BinaryQueryOracle) -> None:
        self.tree = tree
        self.oracle = oracle

    def answer(
        self, formula: HclExpr, variables: Sequence[str]
    ) -> frozenset[tuple[int, ...]]:
        """Return the answer set ``q_{C,x}(t)`` of the query.

        Raises
        ------
        RestrictionViolation
            If the formula shares variables across a composition (it then
            lies outside HCL⁻ and the algorithm would be incorrect).
        """
        check_no_variable_sharing(formula)
        shared, system = normalize(formula)
        return self._answer_shared(shared, system, variables)

    def answer_shared(
        self,
        shared: SharedExpr,
        system: EquationSystem,
        variables: Sequence[str],
    ) -> frozenset[tuple[int, ...]]:
        """Answer a query already given in sharing-formula form."""
        return self._answer_shared(shared, system, variables)

    # ------------------------------------------------------------------ core
    def _answer_shared(
        self,
        shared: SharedExpr,
        system: EquationSystem,
        variables: Sequence[str],
    ) -> frozenset[tuple[int, ...]]:
        output_variables = frozenset(variables)
        mc_table = MCTable(self.tree, shared, system, self.oracle)
        nodes = list(self.tree.nodes())
        memo: dict[tuple[int, int], frozenset[Valuation]] = {}
        union_variable_cache: dict[int, frozenset[str]] = {}

        def union_variables(formula: SharedUnion) -> frozenset[str]:
            key = id(formula)
            if key not in union_variable_cache:
                union_variable_cache[key] = (
                    shared_variables(formula, system) & output_variables
                )
            return union_variable_cache[key]

        def vals(formula: SharedExpr, node: int) -> frozenset[Valuation]:
            key = (id(formula), node)
            cached = memo.get(key)
            if cached is not None:
                return cached
            if not mc_table.value(formula, node):
                result: frozenset[Valuation] = frozenset()
            elif isinstance(formula, SharedSelf):
                result = frozenset({EMPTY_VALUATION})
            elif isinstance(formula, SharedParam):
                result = vals(system.resolve(formula), node)
            elif isinstance(formula, SharedUnion):
                target = union_variables(formula)
                left = _extend(vals(formula.left, node), target, nodes)
                right = _extend(vals(formula.right, node), target, nodes)
                result = frozenset(left | right)
            elif isinstance(formula, SharedCompose):
                head = formula.head
                if isinstance(head, HeadLeaf):
                    collected: set[Valuation] = set()
                    for successor in self.oracle.successors(head.query, node):
                        collected.update(vals(formula.tail, successor))
                    result = frozenset(collected)
                elif isinstance(head, HeadVar):
                    tail_vals = vals(formula.tail, node)
                    if head.name in output_variables:
                        binding = frozenset({(head.name, node)})
                        result = frozenset(
                            valuation | binding for valuation in tail_vals
                        )
                    else:
                        result = tail_vals
                elif isinstance(head, HeadFilter):
                    filter_vals = vals(head.inner, node)
                    tail_vals = vals(formula.tail, node)
                    result = frozenset(
                        left | right for left in filter_vals for right in tail_vals
                    )
                else:  # pragma: no cover - exhaustive
                    raise RestrictionViolation("HCL", f"unknown head {head!r}")
            else:  # pragma: no cover - exhaustive
                raise RestrictionViolation("HCL", f"unknown formula {formula!r}")
            memo[key] = result
            return result

        partial_valuations: set[Valuation] = set()
        for node in nodes:
            partial_valuations.update(vals(shared, node))

        total_valuations = _extend(partial_valuations, output_variables, nodes)
        answers = set()
        for valuation in total_valuations:
            binding = dict(valuation)
            answers.add(tuple(binding[name] for name in variables))
        return frozenset(answers)

    def nonempty(self, formula: HclExpr) -> bool:
        """Decide whether the query has any answer (Boolean query answering)."""
        check_no_variable_sharing(formula)
        shared, system = normalize(formula)
        mc_table = MCTable(self.tree, shared, system, self.oracle)
        return any(mc_table.value(shared, node) for node in self.tree.nodes())


def answer_hcl(
    tree: Tree,
    formula: HclExpr,
    variables: Sequence[str],
    oracle: BinaryQueryOracle,
) -> frozenset[tuple[int, ...]]:
    """Convenience wrapper: answer one HCL⁻(L) query on ``tree``."""
    return HclAnswerer(tree, oracle).answer(formula, variables)
