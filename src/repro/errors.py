"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch everything coming out of the engine with a single handler
while still being able to distinguish parse errors from semantic restriction
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class TreeError(ReproError):
    """Raised for malformed trees or invalid node identifiers."""


class ParseError(ReproError):
    """Raised when a concrete-syntax expression cannot be parsed.

    Attributes
    ----------
    position:
        Character offset in the input at which the error was detected, or
        ``None`` when the offset is unknown.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class EvaluationError(ReproError):
    """Raised when an expression cannot be evaluated.

    The most common cause is a free variable that has no binding in the
    supplied variable assignment.
    """


class UnboundVariableError(EvaluationError):
    """Raised when evaluation reaches a variable with no assigned node."""

    def __init__(self, variable: str) -> None:
        super().__init__(f"variable ${variable} is not bound by the assignment")
        self.variable = variable


class RestrictionViolation(ReproError):
    """Raised when an expression violates one of the PPL restrictions.

    The violated condition names follow Definition 1 of the paper, e.g.
    ``"N(for)"`` or ``"NVS(/)"``.
    """

    def __init__(self, condition: str, message: str) -> None:
        super().__init__(f"{condition}: {message}")
        self.condition = condition


class NotAcyclicError(ReproError):
    """Raised when a conjunctive query is not acyclic (no join tree exists)."""


class TranslationError(ReproError):
    """Raised when a translation between languages is not defined."""


class EngineError(ReproError):
    """Base class for errors raised by the engine registry and dispatch."""


class UnknownEngineError(EngineError):
    """Raised when an engine name is not present in the registry.

    Attributes
    ----------
    engine:
        The requested name.
    available:
        The registered engine names at lookup time.
    """

    def __init__(self, engine: str, available: tuple[str, ...] = ()) -> None:
        hint = f"; available engines: {', '.join(available)}" if available else ""
        super().__init__(f"unknown engine {engine!r}{hint}")
        self.engine = engine
        self.available = available


class EngineCapabilityError(EngineError):
    """Raised *before evaluation* when a query exceeds an engine's capabilities.

    Examples: an n-ary query dispatched to a binary-only backend, a union to
    a union-free backend, or a complement to the set-based Core XPath 1.0
    evaluator.

    Attributes
    ----------
    engine:
        The engine that refused the query.
    capability:
        Short name of the violated capability (e.g. ``"max_arity"``).
    """

    def __init__(self, engine: str, capability: str, message: str) -> None:
        super().__init__(f"engine {engine!r} cannot run this query ({capability}): {message}")
        self.engine = engine
        self.capability = capability


class SessionError(ReproError):
    """Base class for errors raised by the :mod:`repro.session` layer."""


class SessionClosedError(SessionError):
    """Raised when an operation is attempted on a closed :class:`Session`.

    Every public method of :class:`repro.session.Session` raises this once
    :meth:`~repro.session.Session.close` (or the context manager) has run,
    so use-after-teardown fails loudly instead of touching torn-down pools.
    """

    def __init__(self, operation: str = "operation") -> None:
        super().__init__(f"the session is closed; cannot perform {operation}")
        self.operation = operation


class CorpusTimeoutError(SessionError):
    """Raised when a sync corpus run exceeds the policy's ``timeout``.

    The deadline covers the whole streamed run (parse + evaluation across
    every document), not each result individually — the sync counterpart of
    the async surface's submission watchdog, which cancels instead.
    """

    def __init__(self, timeout: float) -> None:
        super().__init__(f"corpus run exceeded the {timeout:g} s execution timeout")
        self.timeout = timeout


class DocumentQuarantinedError(ReproError):
    """Raised for a document that repeatedly killed its shard worker.

    The supervised process strategy attributes each worker death to the
    document that was being evaluated; after the second fatal dispatch the
    document is quarantined so a poison document cannot consume the whole
    restart budget.  The error appears as a typed *error record* in the
    result stream (never a stream abort), regardless of ``on_error``.

    Attributes
    ----------
    doc_name:
        The quarantined document.
    crashes:
        How many worker deaths were attributed to it.
    """

    def __init__(self, doc_name: str, crashes: int) -> None:
        super().__init__(
            f"document {doc_name!r} killed its shard worker {crashes} times "
            "and is quarantined for the life of this executor"
        )
        self.doc_name = doc_name
        self.crashes = crashes


class FaultInjectedError(ReproError):
    """Raised by an armed :mod:`repro.faults` fault point.

    Deliberately *not* a subclass of the error the point simulates: chaos
    tests distinguish injected failures from organic ones by type.

    Attributes
    ----------
    point:
        The fault point that fired (e.g. ``"corrupt_read"``).
    key:
        The call-site key (document name, snapshot digest, ...).
    """

    def __init__(self, point: str, key: str = "") -> None:
        detail = f" at {key!r}" if key else ""
        super().__init__(f"injected fault {point!r}{detail}")
        self.point = point
        self.key = key


class WorkerCrashError(FaultInjectedError):
    """An injected ``worker_crash`` tripped outside a sacrificial process.

    Inside a shard worker the harness exits the process (a real worker
    death, exercising supervision); in the parent — serial and threads
    strategies — it raises this instead, exercising the retry path.
    """


class ObsPortInUseError(ReproError):
    """The observability HTTP endpoint could not bind its port.

    Attributes
    ----------
    host / port:
        The requested bind address.  ``obs_port=0`` (ephemeral) remains the
        escape hatch when a fixed port may be contended.
    """

    def __init__(self, host: str, port: int) -> None:
        super().__init__(
            f"observability HTTP port {port} on {host} is already in use "
            "(another exporter running? use obs_port=0 for an ephemeral port)"
        )
        self.host = host
        self.port = port
