"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch everything coming out of the engine with a single handler
while still being able to distinguish parse errors from semantic restriction
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class TreeError(ReproError):
    """Raised for malformed trees or invalid node identifiers."""


class ParseError(ReproError):
    """Raised when a concrete-syntax expression cannot be parsed.

    Attributes
    ----------
    position:
        Character offset in the input at which the error was detected, or
        ``None`` when the offset is unknown.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class EvaluationError(ReproError):
    """Raised when an expression cannot be evaluated.

    The most common cause is a free variable that has no binding in the
    supplied variable assignment.
    """


class UnboundVariableError(EvaluationError):
    """Raised when evaluation reaches a variable with no assigned node."""

    def __init__(self, variable: str) -> None:
        super().__init__(f"variable ${variable} is not bound by the assignment")
        self.variable = variable


class RestrictionViolation(ReproError):
    """Raised when an expression violates one of the PPL restrictions.

    The violated condition names follow Definition 1 of the paper, e.g.
    ``"N(for)"`` or ``"NVS(/)"``.
    """

    def __init__(self, condition: str, message: str) -> None:
        super().__init__(f"{condition}: {message}")
        self.condition = condition


class NotAcyclicError(ReproError):
    """Raised when a conjunctive query is not acyclic (no join tree exists)."""


class TranslationError(ReproError):
    """Raised when a translation between languages is not defined."""
