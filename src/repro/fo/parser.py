"""A small concrete syntax for FO formulas over trees.

Grammar (lowest to highest precedence)::

    formula  := quantified
    quantified := ('exists' | 'forall') NAME '.' quantified | or_expr
    or_expr  := and_expr ( 'or' and_expr )*
    and_expr := not_expr ( 'and' not_expr )*
    not_expr := 'not' not_expr | atom
    atom     := 'lab' '[' NAME ']' '(' NAME ')'
              | ('ch*' | 'ns*' | 'ch' | 'ns' | 'ch1' | 'ch2') '(' NAME ',' NAME ')'
              | NAME '=' NAME
              | '(' formula ')'

The syntax matches what :meth:`repro.fo.ast.Formula.unparse` produces, so
formulas round-trip through the parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParseError
from repro.fo.ast import (
    And,
    ChStar,
    Child,
    Exists,
    FirstChild,
    Forall,
    Formula,
    Lab,
    NextSibling,
    Not,
    NsStar,
    Or,
    SecondChild,
    equality,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<chstar>ch\*)
  | (?P<nsstar>ns\*)
  | (?P<name>[A-Za-z_][\w]*)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<comma>,)
  | (?P<dotsep>\.)
  | (?P<equals>=)
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({"exists", "forall", "and", "or", "not", "lab", "ch", "ns", "ch1", "ch2"})

_RELATIONS = {
    "chstar": ChStar,
    "nsstar": NsStar,
    "ch": Child,
    "ns": NextSibling,
    "ch1": FirstChild,
    "ch2": SecondChild,
}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup
        assert kind is not None
        value = match.group()
        if kind != "ws":
            if kind == "name" and value in _KEYWORDS:
                kind = value
            tokens.append(_Token(kind, value, position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.index + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def at(self, kind: str, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token is not None and token.kind == kind

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text))
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"expected {kind!r} but reached end of input", len(self.text))
        if token.kind != kind:
            raise ParseError(f"expected {kind!r} but found {token.text!r}", token.position)
        return self.advance()

    def parse_formula(self) -> Formula:
        if self.at("exists") or self.at("forall"):
            keyword = self.advance().kind
            variable = self.expect("name").text
            self.expect("dotsep")
            body = self.parse_formula()
            return Exists(variable, body) if keyword == "exists" else Forall(variable, body)
        return self.parse_or()

    def parse_or(self) -> Formula:
        left = self.parse_and()
        while self.at("or"):
            self.advance()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Formula:
        left = self.parse_not()
        while self.at("and"):
            self.advance()
            left = And(left, self.parse_not())
        return left

    def parse_not(self) -> Formula:
        if self.at("not"):
            self.advance()
            return Not(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> Formula:
        token = self.peek()
        if token is None:
            raise ParseError("expected an atom", len(self.text))
        if token.kind == "lparen":
            self.advance()
            inner = self.parse_formula()
            self.expect("rparen")
            return inner
        if token.kind == "lab":
            self.advance()
            self.expect("lbracket")
            label = self.expect("name").text
            self.expect("rbracket")
            self.expect("lparen")
            variable = self.expect("name").text
            self.expect("rparen")
            return Lab(label, variable)
        if token.kind in _RELATIONS:
            self.advance()
            constructor = _RELATIONS[token.kind]
            self.expect("lparen")
            source = self.expect("name").text
            self.expect("comma")
            target = self.expect("name").text
            self.expect("rparen")
            return constructor(source, target)
        if token.kind == "name" and self.at("equals", 1):
            left = self.advance().text
            self.advance()
            right = self.expect("name").text
            return equality(left, right)
        raise ParseError(f"unexpected token {token.text!r} in FO formula", token.position)

    def finish(self) -> None:
        token = self.peek()
        if token is not None:
            raise ParseError(f"unexpected trailing input {token.text!r}", token.position)


def parse_fo(text: str) -> Formula:
    """Parse an FO formula from concrete syntax.

    Examples
    --------
    >>> phi = parse_fo("exists z. ch*(x,z) and lab[book](z)")
    >>> sorted(phi.free_variables)
    ['x']
    """
    parser = _Parser(text)
    formula = parser.parse_formula()
    parser.finish()
    return formula
