"""Tarskian semantics and naive query answering for FO over trees.

``fo_check`` decides ``t, alpha |= phi``; ``fo_answer`` computes the n-ary
query ``q_{phi,x}(t)`` by enumerating assignments of the free variables —
the standard, exponential-in-arity baseline that Core XPath 2.0 inherits
through Proposition 1.

Binary-tree atoms ``ch1``/``ch2`` are interpreted over the first and second
child of a node, so the same evaluator serves the Section 8 machinery (which
works on binary encodings).
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

from repro.errors import EvaluationError, UnboundVariableError
from repro.trees.tree import Tree
from repro.fo.ast import (
    And,
    ChStar,
    Child,
    Exists,
    FirstChild,
    Forall,
    Formula,
    Lab,
    NextSibling,
    Not,
    NsStar,
    Or,
    SecondChild,
)

Assignment = Mapping[str, int]


def _lookup(assignment: Assignment, variable: str) -> int:
    try:
        return assignment[variable]
    except KeyError:
        raise UnboundVariableError(variable) from None


def _ns_star(tree: Tree, source: int, target: int) -> bool:
    if source == target:
        return True
    current = tree.next_sibling[source]
    while current is not None:
        if current == target:
            return True
        current = tree.next_sibling[current]
    return False


def fo_check(tree: Tree, formula: Formula, assignment: Assignment) -> bool:
    """Decide the model-checking judgment ``t, alpha |= phi``."""
    if isinstance(formula, Lab):
        return tree.labels[_lookup(assignment, formula.variable)] == formula.label
    if isinstance(formula, ChStar):
        return tree.is_ancestor_or_self(
            _lookup(assignment, formula.source), _lookup(assignment, formula.target)
        )
    if isinstance(formula, NsStar):
        return _ns_star(
            tree, _lookup(assignment, formula.source), _lookup(assignment, formula.target)
        )
    if isinstance(formula, Child):
        return tree.parent[_lookup(assignment, formula.target)] == _lookup(
            assignment, formula.source
        )
    if isinstance(formula, NextSibling):
        return tree.next_sibling[_lookup(assignment, formula.source)] == _lookup(
            assignment, formula.target
        )
    if isinstance(formula, FirstChild):
        children = tree.children(_lookup(assignment, formula.source))
        return bool(children) and children[0] == _lookup(assignment, formula.target)
    if isinstance(formula, SecondChild):
        children = tree.children(_lookup(assignment, formula.source))
        return len(children) >= 2 and children[1] == _lookup(assignment, formula.target)
    if isinstance(formula, Not):
        return not fo_check(tree, formula.operand, assignment)
    if isinstance(formula, And):
        return fo_check(tree, formula.left, assignment) and fo_check(
            tree, formula.right, assignment
        )
    if isinstance(formula, Or):
        return fo_check(tree, formula.left, assignment) or fo_check(
            tree, formula.right, assignment
        )
    if isinstance(formula, Exists):
        extended = dict(assignment)
        for node in tree.nodes():
            extended[formula.variable] = node
            if fo_check(tree, formula.body, extended):
                return True
        return False
    if isinstance(formula, Forall):
        extended = dict(assignment)
        for node in tree.nodes():
            extended[formula.variable] = node
            if not fo_check(tree, formula.body, extended):
                return False
        return True
    raise EvaluationError(f"unknown FO formula {formula!r}")


def fo_answer(
    tree: Tree, formula: Formula, variables: Sequence[str]
) -> frozenset[tuple[int, ...]]:
    """Compute ``q_{phi,x}(t)`` by enumerating assignments of the free variables.

    Output variables not free in the formula range over all nodes.
    """
    inner = sorted(formula.free_variables | set(variables))
    nodes = list(tree.nodes())
    answers: set[tuple[int, ...]] = set()
    for values in itertools.product(nodes, repeat=len(inner)):
        assignment = dict(zip(inner, values))
        if fo_check(tree, formula, assignment):
            answers.add(tuple(assignment[name] for name in variables))
    return frozenset(answers)


def fo_nonempty(tree: Tree, formula: Formula) -> bool:
    """Decide whether some assignment of the free variables satisfies the formula."""
    inner = sorted(formula.free_variables)
    nodes = list(tree.nodes())
    for values in itertools.product(nodes, repeat=len(inner)):
        if fo_check(tree, formula, dict(zip(inner, values))):
            return True
    return False


def binary_fo_relation(
    tree: Tree, formula: Formula, source: str, target: str
) -> frozenset[tuple[int, int]]:
    """Materialise the binary FO query ``{(alpha(source), alpha(target)) | t,alpha |= phi}``.

    Used to instantiate HCL(FObin): each binary FO formula becomes an
    explicit relation registered in an
    :class:`repro.hcl.binding.ExplicitRelationOracle`.
    """
    pairs = set()
    for source_node in tree.nodes():
        for target_node in tree.nodes():
            if fo_check(tree, formula, {source: source_node, target: target_node}):
                pairs.add((source_node, target_node))
    return frozenset(pairs)
