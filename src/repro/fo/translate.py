"""The Lemma 1 translation of FO into Core XPath 2.0.

The paper's translation maps every FO formula ``phi`` to a path expression
``L(phi)`` such that ``t, alpha |= phi`` iff ``[[L(phi)]]^{t,alpha}`` is
non-empty::

    L(exists x. phi) = for $x in nodes return L(phi)
    L(not phi)       = .[not L(phi)]
    L(phi and phi')  = L(phi) / L(phi')
    L(ns*(x, y))     = $x/(following-sibling::* union .)/.[. is $y]
    L(ch*(x, y))     = $x/(descendant::* union .)/.[. is $y]
    L(lab_a(x))      = $x/self::a

(The last clause is not spelled out in the paper but is the obvious one.)
Disjunction translates to ``union``; universal quantification is rewritten to
``not exists not`` first.  The translation is linear-time and linear-size,
which experiment E7 measures.

``quantifier_free_to_core_xpath`` is the Lemma 2 restriction: the same
translation applied to quantifier-free formulas, producing a for-loop-free
expression.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.trees.axes import Axis
from repro.fo.ast import (
    And,
    ChStar,
    Child,
    Exists,
    FirstChild,
    Forall,
    Formula,
    Lab,
    NextSibling,
    Not,
    NsStar,
    Or,
    SecondChild,
)
from repro.xpath.ast import (
    CONTEXT,
    CompTest,
    ContextItem,
    Filter,
    ForLoop,
    NotTest,
    PathCompose,
    PathExpr,
    PathTest,
    PathUnion,
    Step,
    VarRef,
    nodes_expression,
)


def _jump_and_test(variable_from: str, reach: PathExpr, variable_to: str) -> PathExpr:
    """Build ``$x / reach / .[. is $y]``."""
    return PathCompose(
        PathCompose(VarRef(variable_from), reach),
        Filter(ContextItem(), CompTest(CONTEXT, variable_to)),
    )


def fo_to_core_xpath(formula: Formula) -> PathExpr:
    """Translate an FO formula into Core XPath 2.0 (Lemma 1).

    The resulting expression has the same free variables and satisfies
    ``t, alpha |= phi``  iff  ``[[result]]^{t,alpha}`` is non-empty.
    """
    if isinstance(formula, Exists):
        return ForLoop(formula.variable, nodes_expression(), fo_to_core_xpath(formula.body))
    if isinstance(formula, Forall):
        rewritten = Not(Exists(formula.variable, Not(formula.body)))
        return fo_to_core_xpath(rewritten)
    if isinstance(formula, Not):
        return Filter(ContextItem(), NotTest(PathTest(fo_to_core_xpath(formula.operand))))
    if isinstance(formula, And):
        return PathCompose(fo_to_core_xpath(formula.left), fo_to_core_xpath(formula.right))
    if isinstance(formula, Or):
        return PathUnion(fo_to_core_xpath(formula.left), fo_to_core_xpath(formula.right))
    if isinstance(formula, NsStar):
        reach = PathUnion(Step(Axis.FOLLOWING_SIBLING, None), ContextItem())
        return _jump_and_test(formula.source, reach, formula.target)
    if isinstance(formula, ChStar):
        reach = PathUnion(Step(Axis.DESCENDANT, None), ContextItem())
        return _jump_and_test(formula.source, reach, formula.target)
    if isinstance(formula, Child):
        return _jump_and_test(formula.source, Step(Axis.CHILD, None), formula.target)
    if isinstance(formula, NextSibling):
        return _jump_and_test(formula.source, Step(Axis.NEXT_SIBLING, None), formula.target)
    if isinstance(formula, FirstChild):
        return _jump_and_test(formula.source, Step(Axis.FIRST_CHILD, None), formula.target)
    if isinstance(formula, SecondChild):
        reach = PathCompose(Step(Axis.FIRST_CHILD, None), Step(Axis.NEXT_SIBLING, None))
        return _jump_and_test(formula.source, reach, formula.target)
    if isinstance(formula, Lab):
        return PathCompose(VarRef(formula.variable), Step(Axis.SELF, formula.label))
    raise TranslationError(f"cannot translate FO formula {formula!r}")


def quantifier_free_to_core_xpath(formula: Formula) -> PathExpr:
    """Translate a quantifier-free FO formula (Lemma 2).

    Raises
    ------
    TranslationError
        If the formula contains a quantifier.
    """
    if not formula.is_quantifier_free():
        raise TranslationError(
            "quantifier_free_to_core_xpath requires a quantifier-free formula; "
            "use fo_to_core_xpath for the general case"
        )
    return fo_to_core_xpath(formula)
