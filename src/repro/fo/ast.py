"""Abstract syntax of first-order logic over trees (Section 2 of the paper).

The core signature is ``{ns*(x, y), ch*(x, y), lab_a(x)}`` with negation,
conjunction and existential quantification::

    phi := ns*(x, y) | ch*(x, y) | lab_a(x) | not phi | phi and phi | exists x. phi

Disjunction, universal quantification, one-step ``ch``/``ns`` and node
equality are provided as additional constructors (all are FO-definable from
the core, and the paper uses them freely).  For Section 8 the binary-tree
signature adds ``ch1`` (first child) and ``ch2`` (second child).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

from repro.pickling import strip_cached_properties

#: Type alias for variable names.
Var = str


class Formula:
    """Base class of FO formulas."""

    def __getstate__(self) -> dict:
        return strip_cached_properties(self)

    @cached_property
    def size(self) -> int:
        """Number of AST nodes (the paper's ``|phi|``)."""
        return 1 + sum(child.size for child in self.children())

    @cached_property
    def free_variables(self) -> frozenset[str]:
        """Free variables of the formula."""
        names = set(self._own_variables())
        for child in self.children():
            names.update(child.free_variables)
        names.difference_update(self._bound_variables())
        return frozenset(names)

    @cached_property
    def quantifier_rank(self) -> int:
        """Maximum nesting depth of quantifiers (``qr`` in Section 8)."""
        inner = max((child.quantifier_rank for child in self.children()), default=0)
        return inner + (1 if isinstance(self, (Exists, Forall)) else 0)

    def children(self) -> tuple["Formula", ...]:
        return ()

    def _own_variables(self) -> tuple[str, ...]:
        return ()

    def _bound_variables(self) -> tuple[str, ...]:
        return ()

    def walk(self) -> Iterator["Formula"]:
        """Yield this formula and all sub-formulas (preorder)."""
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def is_quantifier_free(self) -> bool:
        """Return True when the formula contains no quantifier."""
        return self.quantifier_rank == 0

    def unparse(self) -> str:
        """Return concrete syntax accepted by :func:`repro.fo.parser.parse_fo`."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.unparse()


# ------------------------------------------------------------------ atoms
@dataclass(frozen=True)
class Lab(Formula):
    """``lab_a(x)`` — node ``x`` carries label ``a``."""

    label: str
    variable: str

    def _own_variables(self) -> tuple[str, ...]:
        return (self.variable,)

    def unparse(self) -> str:
        return f"lab[{self.label}]({self.variable})"


@dataclass(frozen=True)
class ChStar(Formula):
    """``ch*(x, y)`` — ``y`` is a descendant of or equal to ``x``."""

    source: str
    target: str

    def _own_variables(self) -> tuple[str, ...]:
        return (self.source, self.target)

    def unparse(self) -> str:
        return f"ch*({self.source},{self.target})"


@dataclass(frozen=True)
class NsStar(Formula):
    """``ns*(x, y)`` — ``y`` equals ``x`` or is a later sibling of ``x``."""

    source: str
    target: str

    def _own_variables(self) -> tuple[str, ...]:
        return (self.source, self.target)

    def unparse(self) -> str:
        return f"ns*({self.source},{self.target})"


@dataclass(frozen=True)
class Child(Formula):
    """``ch(x, y)`` — ``y`` is a child of ``x`` (one step)."""

    source: str
    target: str

    def _own_variables(self) -> tuple[str, ...]:
        return (self.source, self.target)

    def unparse(self) -> str:
        return f"ch({self.source},{self.target})"


@dataclass(frozen=True)
class NextSibling(Formula):
    """``ns(x, y)`` — ``y`` is the immediate next sibling of ``x``."""

    source: str
    target: str

    def _own_variables(self) -> tuple[str, ...]:
        return (self.source, self.target)

    def unparse(self) -> str:
        return f"ns({self.source},{self.target})"


@dataclass(frozen=True)
class FirstChild(Formula):
    """``ch1(x, y)`` — binary-tree signature: ``y`` is the first child of ``x``."""

    source: str
    target: str

    def _own_variables(self) -> tuple[str, ...]:
        return (self.source, self.target)

    def unparse(self) -> str:
        return f"ch1({self.source},{self.target})"


@dataclass(frozen=True)
class SecondChild(Formula):
    """``ch2(x, y)`` — binary-tree signature: ``y`` is the second child of ``x``."""

    source: str
    target: str

    def _own_variables(self) -> tuple[str, ...]:
        return (self.source, self.target)

    def unparse(self) -> str:
        return f"ch2({self.source},{self.target})"


# ------------------------------------------------------------ connectives
@dataclass(frozen=True)
class Not(Formula):
    """Negation ``not phi``."""

    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def unparse(self) -> str:
        return f"not({self.operand.unparse()})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction ``phi1 and phi2``."""

    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} and {self.right.unparse()})"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction ``phi1 or phi2`` (derived connective, kept primitive here)."""

    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} or {self.right.unparse()})"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification ``exists x. phi``."""

    variable: str
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def _bound_variables(self) -> tuple[str, ...]:
        return (self.variable,)

    def unparse(self) -> str:
        return f"(exists {self.variable}. {self.body.unparse()})"


@dataclass(frozen=True)
class Forall(Formula):
    """Universal quantification ``forall x. phi`` (derived, kept primitive)."""

    variable: str
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def _bound_variables(self) -> tuple[str, ...]:
        return (self.variable,)

    def unparse(self) -> str:
        return f"(forall {self.variable}. {self.body.unparse()})"


# -------------------------------------------------------------- derived forms
def equality(left: str, right: str) -> Formula:
    """Node equality ``x = y``, defined as ``ch*(x, y) and ch*(y, x)``."""
    return And(ChStar(left, right), ChStar(right, left))


def conjunction(*parts: Formula) -> Formula:
    """Conjunction of one or more formulas."""
    if not parts:
        raise ValueError("conjunction() requires at least one formula")
    result = parts[0]
    for part in parts[1:]:
        result = And(result, part)
    return result


def disjunction(*parts: Formula) -> Formula:
    """Disjunction of one or more formulas."""
    if not parts:
        raise ValueError("disjunction() requires at least one formula")
    result = parts[0]
    for part in parts[1:]:
        result = Or(result, part)
    return result


def exists_many(variables, body: Formula) -> Formula:
    """Prefix a block of existential quantifiers."""
    result = body
    for variable in reversed(list(variables)):
        result = Exists(variable, result)
    return result
