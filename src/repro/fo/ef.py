"""Ehrenfeucht–Fraïssé games and rank-n equivalence over binary trees.

Section 8 of the paper proves ``HCL⁻(FObin) = FO`` with a decomposition
lemma (Lemma 4) whose proof combines Duplicator strategies of EF games on
the components of a tree decomposition.  This module supplies the game
machinery so the lemma can be *checked empirically* on small trees:

* :func:`atomic_equivalent` — partial-isomorphism test on distinguished
  tuples (the rank-0 case).
* :func:`ef_equivalent` — the standard back-and-forth recursion deciding
  ``(t, v) ≡_n (t', u)`` for the binary-tree signature
  ``{lab_a, ch1, ch2, ch*}``.  Exponential in ``n`` — only intended for the
  small instances of the test-suite and the Lemma 4 checker.
* :func:`check_decomposition_lemma` — given two trees and two node tuples
  satisfying the three component hypotheses of Lemma 4, verify that the
  conclusion ``(t, v) ≡_n (t', u)`` holds.
"""

from __future__ import annotations

from typing import Sequence

from repro.trees.tree import Tree


def _first_child(tree: Tree, node: int) -> int | None:
    children = tree.children(node)
    return children[0] if children else None


def _second_child(tree: Tree, node: int) -> int | None:
    children = tree.children(node)
    return children[1] if len(children) >= 2 else None


def atomic_equivalent(
    tree_a: Tree, tuple_a: Sequence[int], tree_b: Tree, tuple_b: Sequence[int]
) -> bool:
    """Return True when the distinguished tuples define a partial isomorphism.

    The atomic relations compared are equality, labels, ``ch1``, ``ch2`` and
    ``ch*`` — the binary-tree signature of Section 8.
    """
    if len(tuple_a) != len(tuple_b):
        return False
    size = len(tuple_a)
    for i in range(size):
        if tree_a.labels[tuple_a[i]] != tree_b.labels[tuple_b[i]]:
            return False
        for j in range(size):
            if (tuple_a[i] == tuple_a[j]) != (tuple_b[i] == tuple_b[j]):
                return False
            if (_first_child(tree_a, tuple_a[i]) == tuple_a[j]) != (
                _first_child(tree_b, tuple_b[i]) == tuple_b[j]
            ):
                return False
            if (_second_child(tree_a, tuple_a[i]) == tuple_a[j]) != (
                _second_child(tree_b, tuple_b[i]) == tuple_b[j]
            ):
                return False
            if tree_a.is_ancestor_or_self(tuple_a[i], tuple_a[j]) != tree_b.is_ancestor_or_self(
                tuple_b[i], tuple_b[j]
            ):
                return False
    return True


def ef_equivalent(
    tree_a: Tree,
    tuple_a: Sequence[int],
    tree_b: Tree,
    tuple_b: Sequence[int],
    rounds: int,
) -> bool:
    """Decide ``(tree_a, tuple_a) ≡_rounds (tree_b, tuple_b)``.

    Implements the textbook characterisation: the structures are rank-n
    equivalent iff the Duplicator wins the n-round EF game, i.e. the tuples
    are atomically equivalent and, for ``rounds > 0``, every Spoiler move in
    either structure can be answered so that the extended tuples are
    (rounds-1)-equivalent.
    """
    if not atomic_equivalent(tree_a, tuple_a, tree_b, tuple_b):
        return False
    if rounds == 0:
        return True
    tuple_a = list(tuple_a)
    tuple_b = list(tuple_b)
    # Spoiler plays in tree_a.
    for move_a in tree_a.nodes():
        if not any(
            ef_equivalent(tree_a, tuple_a + [move_a], tree_b, tuple_b + [move_b], rounds - 1)
            for move_b in tree_b.nodes()
        ):
            return False
    # Spoiler plays in tree_b.
    for move_b in tree_b.nodes():
        if not any(
            ef_equivalent(tree_a, tuple_a + [move_a], tree_b, tuple_b + [move_b], rounds - 1)
            for move_a in tree_a.nodes()
        ):
            return False
    return True


def check_decomposition_lemma(
    tree_a: Tree,
    tuple_a: Sequence[int],
    tree_b: Tree,
    tuple_b: Sequence[int],
    rounds: int,
) -> bool:
    """Empirically verify Lemma 4 on one instance.

    Checks: *if* the three component hypotheses hold (equivalence of the
    upper parts extended with the least common ancestors, and of the two
    subtrees below its children, each with the projected sub-tuples), *then*
    the full structures are rank-``rounds`` equivalent.  Returns True when the
    implication holds for this instance (vacuously true when a hypothesis
    fails), False when a counterexample to the lemma is found — which the
    test-suite asserts never happens.
    """
    if len(tuple_a) != len(tuple_b) or len(tuple_a) < 2:
        return True
    if len(set(tuple_a)) < 2 or len(set(tuple_b)) < 2:
        return True

    lca_a = _lca_of_tuple(tree_a, tuple_a)
    lca_b = _lca_of_tuple(tree_b, tuple_b)
    first_a, first_b = _first_child(tree_a, lca_a), _first_child(tree_b, lca_b)
    second_a, second_b = _second_child(tree_a, lca_a), _second_child(tree_b, lca_b)
    if None in (first_a, first_b, second_a, second_b):
        return True

    equal_positions = [i for i, node in enumerate(tuple_a) if node == lca_a]
    left_positions = [
        i for i, node in enumerate(tuple_a) if tree_a.is_ancestor_or_self(first_a, node)
    ]
    right_positions = [
        i for i, node in enumerate(tuple_a) if tree_a.is_ancestor_or_self(second_a, node)
    ]
    # The same partition must describe tuple_b for the hypotheses to be
    # meaningful; otherwise the instance does not match the lemma's setting.
    for positions, anchor_b in (
        (equal_positions, lca_b),
        (left_positions, first_b),
        (right_positions, second_b),
    ):
        for i in positions:
            if positions is equal_positions:
                if tuple_b[i] != anchor_b:
                    return True
            elif not tree_b.is_ancestor_or_self(anchor_b, tuple_b[i]):
                return True

    hypothesis_top = ef_equivalent(
        tree_a,
        [lca_a] + [tuple_a[i] for i in equal_positions],
        tree_b,
        [lca_b] + [tuple_b[i] for i in equal_positions],
        rounds,
    )
    left_tree_a, left_map_a = tree_a.subtree(first_a), tree_a.subtree_node_map(first_a)
    left_tree_b, left_map_b = tree_b.subtree(first_b), tree_b.subtree_node_map(first_b)
    hypothesis_left = ef_equivalent(
        left_tree_a,
        [left_map_a[tuple_a[i]] for i in left_positions],
        left_tree_b,
        [left_map_b[tuple_b[i]] for i in left_positions],
        rounds,
    )
    right_tree_a, right_map_a = tree_a.subtree(second_a), tree_a.subtree_node_map(second_a)
    right_tree_b, right_map_b = tree_b.subtree(second_b), tree_b.subtree_node_map(second_b)
    hypothesis_right = ef_equivalent(
        right_tree_a,
        [right_map_a[tuple_a[i]] for i in right_positions],
        right_tree_b,
        [right_map_b[tuple_b[i]] for i in right_positions],
        rounds,
    )
    if not (hypothesis_top and hypothesis_left and hypothesis_right):
        return True
    return ef_equivalent(tree_a, list(tuple_a), tree_b, list(tuple_b), rounds)


def _lca_of_tuple(tree: Tree, nodes: Sequence[int]) -> int:
    result = nodes[0]
    for node in nodes[1:]:
        result = tree.least_common_ancestor(result, node)
    return result
