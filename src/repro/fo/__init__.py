"""First-order logic over unranked trees (substrates S3 and S10).

The paper works with FO over the signature ``{ns*, ch*, lab_a}`` on unranked
trees (Section 2) and, for the completeness proof of Section 8, with FO over
the signature ``{ch1, ch2, ch*}`` on binary trees.  This package provides:

* :mod:`~repro.fo.ast` — formulas, free variables, quantifier rank.
* :mod:`~repro.fo.parser` — a small concrete syntax.
* :mod:`~repro.fo.semantics` — Tarskian model checking and naive n-ary
  query answering (by assignment enumeration).
* :mod:`~repro.fo.translate` — the Lemma 1 translation of FO into
  Core XPath 2.0 (and its quantifier-free restriction of Lemma 2).
* :mod:`~repro.fo.ef` — Ehrenfeucht–Fraïssé games and rank-n equivalence
  over binary trees, used to exercise the decomposition lemma (Lemma 4).
"""

from repro.fo.ast import (
    And,
    ChStar,
    Child,
    Exists,
    FirstChild,
    Formula,
    Lab,
    Forall,
    Not,
    NsStar,
    NextSibling,
    Or,
    SecondChild,
    Var,
    equality,
)
from repro.fo.parser import parse_fo
from repro.fo.semantics import fo_answer, fo_check, fo_nonempty
from repro.fo.translate import fo_to_core_xpath, quantifier_free_to_core_xpath

__all__ = [
    "Formula",
    "Var",
    "Lab",
    "ChStar",
    "NsStar",
    "Child",
    "NextSibling",
    "FirstChild",
    "SecondChild",
    "Not",
    "And",
    "Or",
    "Exists",
    "Forall",
    "equality",
    "parse_fo",
    "fo_check",
    "fo_answer",
    "fo_nonempty",
    "fo_to_core_xpath",
    "quantifier_free_to_core_xpath",
]
